"""Performance figures: normalized-IPC comparisons (Figures 1b, 4, 12, 14-16).

Each figure is one ``perf`` grid — workloads x mitigations x TRH (x
tracker for Figure 16) — rendered as per-workload normalized
performance plus suite geometric means. Baselines are planned and
deduplicated by the engine; the store makes the grids shared property:
Figure 15's RRS cells serve Figure 1b's sweep, Figure 16's Misra-Gries
half reuses Figure 15's cells, and so on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.registry import register_figure
from repro.report.render import Artifact, Table
from repro.report.spec import FigureData, FigureSpec, ReportConfig
from repro.sim.experiment import ExperimentSpec
from repro.sim.results import geometric_mean, slowdown_percent


def perf_spec(
    config: ReportConfig,
    workloads: Sequence[str],
    mitigations: Sequence[str],
    trh_values: Sequence[int],
    trackers: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """One declarative perf grid under the report's scaled knobs."""
    grid = {"trh": list(trh_values)}
    if trackers is not None:
        grid["tracker"] = list(trackers)
    return ExperimentSpec(
        workloads=list(workloads),
        mitigations=list(mitigations),
        base_params=config.perf_params(trh_values[0]),
        grid=grid,
    )


def normalized_tables(
    data: FigureData,
    mitigations: Sequence[str],
    trh_values: Sequence[int],
    trackers: Sequence[Optional[str]] = (None,),
) -> List[Table]:
    """The standard perf-figure layout: one per-workload table per
    (tracker, TRH) slice plus a single suite-geomean table, with an
    average-slowdown note row built in (``ALL`` suite)."""
    tables: List[Table] = []
    geomean_rows: List[List[object]] = []
    for tracker in trackers:
        for trh in trh_values:
            subset = data.results.filter(trh=trh, tracker=tracker)
            name_parts = []
            if tracker is not None and len(trackers) > 1:
                name_parts.append(tracker)
            if len(trh_values) > 1:
                name_parts.append(f"trh{trh}")
            table = subset.normalized_table()
            tables.append(
                Table(
                    name="-".join(name_parts),
                    columns=["workload"] + list(mitigations),
                    rows=[
                        [workload] + [row.get(m) for m in mitigations]
                        for workload, row in table.items()
                    ],
                )
            )
            label = [tracker, trh] if len(trackers) > 1 else [trh]
            for suite, row in sorted(subset.suite_geomeans().items()):
                geomean_rows.append(
                    label + [suite] + [row.get(m) for m in mitigations]
                )
    label_columns = (
        ["tracker", "trh"] if len(trackers) > 1 else ["trh"]
    )
    tables.append(
        Table(
            name="geomeans",
            columns=label_columns + ["suite"] + list(mitigations),
            rows=geomean_rows,
        )
    )
    return tables


def _slowdown_notes(
    data: FigureData,
    mitigations: Sequence[str],
    trh_values: Sequence[int],
) -> List[str]:
    """Average-slowdown one-liners (the paper's headline percentages)."""
    notes = []
    for trh in trh_values:
        subset = data.results.filter(trh=trh)
        means = subset.suite_geomeans().get("ALL", {})
        parts = [
            f"{m} {slowdown_percent(means[m]):.2f}%"
            for m in mitigations
            if m in means
        ]
        if parts:
            notes.append(
                f"average slowdown at TRH={trh}: " + ", ".join(parts)
            )
    return notes


@register_figure(
    "fig01b",
    title="Figure 1b: normalized performance of RRS as TRH scales down",
    description="RRS costs ~0.3% at TRH=4800 but degrades sharply below",
)
def fig01b(config: ReportConfig) -> FigureSpec:
    """RRS-only TRH sweep on a hot/streaming/compute workload mix."""
    workloads = ["gcc", "hmmer", "sphinx3", "soplex", "lbm", "povray"]
    trh_values = [4800, 2400, 1200]

    def render(data: FigureData) -> Artifact:
        tables = normalized_tables(data, ["rrs"], trh_values)
        means = [
            geometric_mean(
                [
                    data.results.normalized(r)
                    for r in data.results.filter(trh=trh, mitigation="rrs")
                    if r.mitigation == "rrs"
                ]
            )
            for trh in trh_values
        ]
        tables.append(
            Table(
                name="means",
                columns=["trh", "rrs"],
                rows=[[t, m] for t, m in zip(trh_values, means)],
            )
        )
        return Artifact(tables=tables)

    return FigureSpec(
        specs=[perf_spec(config, workloads, ["rrs"], trh_values)],
        render=render,
    )


@register_figure(
    "fig04",
    title="Figure 4: RRS with vs without immediate unswap operations",
    description="skipping immediate unswaps costs an extra 3-7% slowdown",
)
def fig04(config: ReportConfig) -> FigureSpec:
    """The unswap ablation (rrs vs rrs-no-unswap) at TRH 1200/2400."""
    workloads = [
        "gcc", "hmmer", "sphinx3", "bzip2", "soplex", "comm1", "lbm", "povray",
    ]
    mitigations = ["rrs", "rrs-no-unswap"]
    trh_values = [1200, 2400]

    def render(data: FigureData) -> Artifact:
        return Artifact(
            tables=normalized_tables(data, mitigations, trh_values),
            notes=_slowdown_notes(data, mitigations, trh_values),
        )

    return FigureSpec(
        specs=[perf_spec(config, workloads, mitigations, trh_values)],
        render=render,
    )


@register_figure(
    "fig12",
    title="Figure 12: normalized performance of SRS vs RRS (equal swap rate)",
    description="equal swap rates give the designs similar slowdowns",
)
def fig12(config: ReportConfig) -> FigureSpec:
    """SRS vs RRS at swap rate 6 across TRH."""
    workloads = [
        "gcc", "hmmer", "sphinx3", "bzip2", "soplex", "pr", "comm1", "lbm",
    ]
    mitigations = ["rrs", "srs"]
    trh_values = [1200, 2400, 4800]

    def render(data: FigureData) -> Artifact:
        return Artifact(
            tables=normalized_tables(data, mitigations, trh_values),
            notes=_slowdown_notes(data, mitigations, trh_values),
        )

    return FigureSpec(
        specs=[perf_spec(config, workloads, mitigations, trh_values)],
        render=render,
    )


@register_figure(
    "fig14",
    title="Figure 14: Scale-SRS vs RRS normalized performance at TRH=1200",
    description="the headline per-workload comparison (RRS 4% vs 0.7% loss)",
)
def fig14(config: ReportConfig) -> FigureSpec:
    """The paper's headline per-workload bars (detailed subset unless
    the config's ``full`` switch selects all 78 workloads)."""
    mitigations = ["rrs", "scale-srs"]

    def render(data: FigureData) -> Artifact:
        return Artifact(
            tables=normalized_tables(data, mitigations, [1200]),
            notes=_slowdown_notes(data, mitigations, [1200]),
        )

    return FigureSpec(
        specs=[perf_spec(config, config.perf_workloads(), mitigations, [1200])],
        render=render,
    )


@register_figure(
    "fig15",
    title="Figure 15: TRH sensitivity, 4800 down to 512 (Misra-Gries)",
    description="the slowdown gap widens monotonically as TRH scales down",
)
def fig15(config: ReportConfig) -> FigureSpec:
    """Scale-SRS vs RRS across four thresholds."""
    workloads = [
        "gcc", "hmmer", "sphinx3", "soplex", "pr", "comm1", "lbm", "povray",
    ]
    mitigations = ["rrs", "scale-srs"]
    trh_values = [4800, 2400, 1200, 512]

    def render(data: FigureData) -> Artifact:
        return Artifact(
            tables=normalized_tables(data, mitigations, trh_values),
            notes=_slowdown_notes(data, mitigations, trh_values),
        )

    return FigureSpec(
        specs=[perf_spec(config, workloads, mitigations, trh_values)],
        render=render,
    )


@register_figure(
    "fig16",
    title="Figure 16: TRH sensitivity under the Hydra tracker",
    description="Hydra's counter-cache traffic amplifies RRS's disadvantage",
)
def fig16(config: ReportConfig) -> FigureSpec:
    """The Figure 15 comparison with tracker as an extra grid axis."""
    workloads = ["gcc", "hmmer", "sphinx3", "soplex", "pr", "comm1", "lbm"]
    mitigations = ["rrs", "scale-srs"]
    trh_values = [4800, 1200, 512]
    trackers = ["hydra", "misra-gries"]

    def render(data: FigureData) -> Artifact:
        return Artifact(
            tables=normalized_tables(
                data, mitigations, trh_values, trackers=trackers
            ),
        )

    return FigureSpec(
        specs=[
            perf_spec(
                config, workloads, mitigations, trh_values, trackers=trackers
            )
        ],
        render=render,
    )
