"""The built-in figure inventory: every paper artifact, registered.

Importing this package runs the :func:`repro.registry.register_figure`
decorators in the submodules (grouped by the paper's narrative:
motivation, the Juggernaut attack, performance, analytical models), so
``FIGURES`` is fully populated afterwards — which is exactly what the
registry's lazy populate hook does on first lookup.
"""

from repro.report.figures import attacks, models, motivation, perf

__all__ = ["attacks", "models", "motivation", "perf"]
