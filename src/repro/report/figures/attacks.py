"""Attack figures: Juggernaut against RRS/SRS (Figures 6, 7, 10 and
the Section III-C / Section VIII discussions).

The store-backed figures here grid the ``security`` evaluation kind —
time-to-break and required-guess curves are engine cells like any perf
point, so a report resumes and shards them identically. The multi-bank
and open-page/DDR5 discussions stay analytic: they evaluate one-off
attack variants (channel ACT dilution, page-policy throttling) that the
``security`` kind does not parameterize.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.attacks.analytical import AttackParameters, JuggernautModel
from repro.attacks.juggernaut import (
    multi_bank_time_to_break_days,
    open_page_time_to_break_days,
)
from repro.registry import register_figure
from repro.report.render import Artifact, Table
from repro.report.spec import FigureData, FigureSpec, ReportConfig
from repro.sim.evaluations import SecurityParams
from repro.sim.experiment import ExperimentSpec

#: The TRH series of every Juggernaut figure.
JUGGERNAUT_TRH_VALUES = (4800, 2400, 1200)
#: The paper's design-point swap rate.
JUGGERNAUT_SWAP_RATE = 6.0

#: Figure 6's attack-round axis and Monte-Carlo validation points.
FIG06_ROUNDS = tuple(range(0, 1401, 100))
FIG06_MC_ROUNDS = (1100, 1200, 1300)

#: Figure 7 samples the round axis twice as densely (k moves in steps).
FIG07_ROUNDS = tuple(range(0, 1401, 50))

#: Figure 10's swap-rate axis.
FIG10_SWAP_RATES = (6, 7, 8, 9, 10)


@register_figure(
    "fig06",
    title="Figure 6: time-to-break RRS with Juggernaut vs attack rounds",
    description="~4 hours at TRH=4800; latents alone break TRH<=2400",
)
def fig06(config: ReportConfig) -> FigureSpec:
    """Analytical curves over the round budget plus Monte-Carlo points.

    Two grids of the ``security`` kind: the analytical curves
    (``iterations=0``) and the k=2-regime validation cells
    (``iterations=20000``); they are distinct store cells, so the
    cheap curves never re-run because the expensive MC ones did.
    """
    curves = ExperimentSpec(
        kind="security",
        mitigations=["rrs"],
        base_params=SecurityParams(swap_rate=JUGGERNAUT_SWAP_RATE),
        grid={
            "trh": list(JUGGERNAUT_TRH_VALUES),
            "rounds": list(FIG06_ROUNDS),
        },
    )
    montecarlo = ExperimentSpec(
        kind="security",
        mitigations=["rrs"],
        base_params=SecurityParams(
            trh=4800,
            swap_rate=JUGGERNAUT_SWAP_RATE,
            iterations=20_000,
            probe_windows=100_000,
        ),
        grid={"rounds": list(FIG06_MC_ROUNDS)},
    )

    def render(data: FigureData) -> Artifact:
        cells = data.results.by("iterations", "trh", "rounds")
        curve_rows = [
            [n]
            + [
                cells[(0, trh, n)].days
                for trh in JUGGERNAUT_TRH_VALUES
            ]
            for n in FIG06_ROUNDS
        ]
        mc_rows = []
        for n in FIG06_MC_ROUNDS:
            cell = cells[(20_000, 4800, n)]
            mc_rows.append([n, cell.mc_days_mean, cell.days])
        return Artifact(
            tables=[
                Table(
                    name="curves",
                    columns=["rounds"]
                    + [f"trh{trh}" for trh in JUGGERNAUT_TRH_VALUES],
                    rows=curve_rows,
                ),
                Table(
                    name="montecarlo",
                    columns=["rounds", "experiment_days", "analytical_days"],
                    rows=mc_rows,
                ),
            ],
            notes=["time-to-break in days; Monte-Carlo at TRH=4800"],
        )

    return FigureSpec(specs=[curves, montecarlo], render=render)


@register_figure(
    "fig07",
    title="Figure 7: correct random guesses (k) required vs attack rounds",
    description="k falls stepwise with rounds; low TRH reaches k=0",
)
def fig07(config: ReportConfig) -> FigureSpec:
    """The required-guess staircase across the round budget."""
    spec = ExperimentSpec(
        kind="security",
        mitigations=["rrs"],
        base_params=SecurityParams(swap_rate=JUGGERNAUT_SWAP_RATE),
        grid={
            "trh": list(JUGGERNAUT_TRH_VALUES),
            "rounds": list(FIG07_ROUNDS),
        },
    )

    def render(data: FigureData) -> Artifact:
        cells = data.results.by("trh", "rounds")
        return Artifact(
            tables=[
                Table(
                    columns=["rounds"]
                    + [f"trh{trh}" for trh in JUGGERNAUT_TRH_VALUES],
                    rows=[
                        [n]
                        + [
                            cells[(trh, n)].required_guesses
                            for trh in JUGGERNAUT_TRH_VALUES
                        ]
                        for n in FIG07_ROUNDS
                    ],
                )
            ],
        )

    return FigureSpec(specs=[spec], render=render)


@register_figure(
    "fig10",
    title="Figure 10: time-to-break SRS vs RRS under Juggernaut",
    description="RRS falls in hours at any swap rate; SRS holds for years",
)
def fig10(config: ReportConfig) -> FigureSpec:
    """Optimal-round time-to-break per design, swap rate, and TRH."""
    spec = ExperimentSpec(
        kind="security",
        mitigations=["rrs", "srs"],
        base_params=SecurityParams(step=10, srs_step=200),
        grid={
            "trh": list(JUGGERNAUT_TRH_VALUES),
            "swap_rate": list(FIG10_SWAP_RATES),
        },
    )

    def render(data: FigureData) -> Artifact:
        cells = data.results.by("mitigation", "trh", "swap_rate")
        tables = [
            Table(
                name=design,
                columns=["swap_rate"]
                + [f"trh{trh}" for trh in JUGGERNAUT_TRH_VALUES],
                rows=[
                    [rate]
                    + [
                        cells[(design, trh, rate)].days
                        for trh in JUGGERNAUT_TRH_VALUES
                    ]
                    for rate in FIG10_SWAP_RATES
                ],
            )
            for design in ("rrs", "srs")
        ]
        return Artifact(
            tables=tables,
            notes=["time-to-break in days at the attacker-optimal budget"],
        )

    return FigureSpec(specs=[spec], render=render)


@register_figure(
    "sec3c-multibank",
    title="Section III-C: the multi-bank Juggernaut attack",
    description="channel ACT throughput dilutes the attack to ~10 years",
)
def sec3c_multibank(config: ReportConfig) -> FigureSpec:
    """Time-to-break vs banks hammered at TRH=4800 / rate 6."""

    def analytic() -> Dict[str, Any]:
        return {
            "days": {
                banks: multi_bank_time_to_break_days(4800, 6, banks)
                for banks in (1, 2, 4, 8, 16)
            }
        }

    def render(data: FigureData) -> Artifact:
        return Artifact(
            tables=[
                Table(
                    columns=["banks", "days", "years"],
                    rows=[
                        [banks, days, days / 365.0]
                        for banks, days in data.extras["days"].items()
                    ],
                )
            ],
        )

    return FigureSpec(render=render, analytic=analytic)


@register_figure(
    "disc-open-page",
    title="Section VIII: Juggernaut under open-page policy and DDR5",
    description="open page buys 10 days at TRH=4800; DDR5 halves the window",
)
def disc_open_page(config: ReportConfig) -> FigureSpec:
    """The page-policy and refresh-window discussion numbers."""

    def analytic() -> Dict[str, Any]:
        closed = JuggernautModel(AttackParameters(trh=4800, ts=800)).best(
            step=10
        )
        results = {
            "closed-page TRH=4800 rate 6 (days)": closed.time_to_break_days,
            "open-page TRH=4800 rate 6 (days)": open_page_time_to_break_days(
                4800, 6
            ),
            "open-page TRH=3300 rate 10 (days)": open_page_time_to_break_days(
                3300, 10
            ),
            "open-page TRH=1200 rate 6 (days)": open_page_time_to_break_days(
                1200, 6
            ),
        }
        ddr5 = {}
        for rate in (6, 8, 10):
            model = JuggernautModel(
                AttackParameters(
                    trh=3100,
                    ts=max(2, 3100 // rate),
                    refresh_window=32_000_000.0,
                    refreshes_per_window=4096,
                )
            )
            ddr5[rate] = model.best(step=10).time_to_break_days
        return {"results": results, "ddr5": ddr5}

    def render(data: FigureData) -> Artifact:
        return Artifact(
            tables=[
                Table(
                    name="page-policy",
                    columns=["scenario", "days"],
                    rows=[
                        [label, days]
                        for label, days in data.extras["results"].items()
                    ],
                ),
                Table(
                    name="ddr5",
                    columns=["swap_rate", "days"],
                    rows=[
                        [rate, days]
                        for rate, days in data.extras["ddr5"].items()
                    ],
                ),
            ],
            notes=["DDR5 rows: 32 ms refresh window, TRH=3100"],
        )

    return FigureSpec(render=render, analytic=analytic)
