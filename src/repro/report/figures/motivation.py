"""Motivation artifacts: Table I, Figure 1a, and the half-double study.

The paper's opening case: thresholds have collapsed ~29x in eight years
(Table I), the random-guess attack RRS was designed against is
intractable (Figure 1a), and victim-focused mitigation loses the
half-double arms race while aggressor-focused row swaps do not
(Section II-E). All three are closed-form or deterministic micro-rigs,
so they live in analytic hooks — no store cells.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.attacks.birthday import random_guess_time_to_break_days
from repro.attacks.harness import hammer_pattern
from repro.attacks.patterns import double_sided, half_double
from repro.core.scale_srs import ScaleSecureRowSwap
from repro.core.vfm import PARA, TargetedRowRefresh
from repro.dram.bank import Bank
from repro.dram.config import DRAMTiming
from repro.dram.disturbance import DisturbanceModel
from repro.registry import register_figure
from repro.report.render import Artifact, Table
from repro.report.spec import FigureData, FigureSpec, ReportConfig
from repro.trackers.base import ExactTracker

#: Figure 1a's swap-rate axis.
FIG01A_SWAP_RATES = (3, 4, 5, 6, 7, 8)
#: Figure 1a's threshold series.
FIG01A_TRH_VALUES = (1200, 2400, 4800)

#: Half-double rig constants (Section II-E).
HALF_DOUBLE_TRH = 2000
HALF_DOUBLE_FACTORS = (1.0, 0.002)
HALF_DOUBLE_HAMMERS = 300_000


@register_figure(
    "table1",
    title="Table I: demonstrated Row Hammer thresholds, 2014-2021",
    artifact="table",
    description="the ~29x threshold collapse motivating scalable defenses",
)
def table1(config: ReportConfig) -> FigureSpec:
    """Threshold history plus the DDR3-to-LPDDR4 scaling factor."""

    def analytic() -> Dict[str, Any]:
        from repro.analysis.thresholds import TRH_HISTORY, scaling_factor

        return {"history": dict(TRH_HISTORY), "scaling": scaling_factor()}

    def render(data: FigureData) -> Artifact:
        return Artifact(
            tables=[
                Table(
                    columns=["generation", "trh"],
                    rows=[
                        [generation, trh]
                        for generation, trh in data.extras["history"].items()
                    ],
                )
            ],
            notes=[
                "DDR3(old) -> LPDDR4(new) scaling: "
                f"{data.extras['scaling']:.1f}x"
            ],
        )

    return FigureSpec(render=render, analytic=analytic)


@register_figure(
    "fig01a",
    title="Figure 1a: time-to-break RRS under the naive random-guess attack",
    description="the birthday-paradox attack needs months to millennia",
)
def fig01a(config: ReportConfig) -> FigureSpec:
    """Random-guess (birthday) attack days across swap rates and TRH."""

    def analytic() -> Dict[str, Any]:
        series = {
            trh: [
                random_guess_time_to_break_days(trh, rate)
                for rate in FIG01A_SWAP_RATES
            ]
            for trh in FIG01A_TRH_VALUES
        }
        return {"series": series}

    def render(data: FigureData) -> Artifact:
        series = data.extras["series"]
        return Artifact(
            tables=[
                Table(
                    columns=["swap_rate"]
                    + [f"trh{trh}" for trh in FIG01A_TRH_VALUES],
                    rows=[
                        [rate]
                        + [series[trh][i] for trh in FIG01A_TRH_VALUES]
                        for i, rate in enumerate(FIG01A_SWAP_RATES)
                    ],
                )
            ],
            notes=[
                "time-to-break in days; TRH=4800 / rate 6 exceeds "
                "700 days (the intro's ~3 years)"
            ],
        )

    return FigureSpec(render=render, analytic=analytic)


def _half_double_rig(name: str, radius: int = 1):
    """One defense instance wired to a fresh bank and disturbance model."""
    timing = DRAMTiming(refresh_window=1e12)
    bank = Bank(4096, timing)
    disturbance = DisturbanceModel(
        4096,
        HALF_DOUBLE_TRH,
        refresh_window=1e12,
        distance_factors=HALF_DOUBLE_FACTORS,
    )
    if name == "trr":
        engine = TargetedRowRefresh(
            bank, disturbance, ExactTracker(100), protected_radius=radius
        )
    elif name == "para":
        engine = PARA(
            bank,
            disturbance,
            trh=HALF_DOUBLE_TRH,
            rng=random.Random(5),
            protected_radius=radius,
        )
    else:
        engine = ScaleSecureRowSwap(
            bank, ExactTracker(HALF_DOUBLE_TRH // 3), random.Random(7)
        )
    return engine, disturbance


@register_figure(
    "motiv-half-double",
    title="Section II-E: half-double defeats victim-focused mitigation",
    description="VFM loses the radius arms race; aggressor swaps do not",
)
def motiv_half_double(config: ReportConfig) -> FigureSpec:
    """Double-sided and half-double patterns against TRR/PARA/Scale-SRS."""

    def analytic() -> Dict[str, Any]:
        rows = {}
        for defense in ("trr", "para", "scale-srs"):
            engine, disturbance = _half_double_rig(defense)
            ds = hammer_pattern(engine, disturbance, double_sided(100, 2400))
            engine, disturbance = _half_double_rig(defense)
            hd = hammer_pattern(
                engine, disturbance, half_double(100, HALF_DOUBLE_HAMMERS)
            )
            rows[defense] = (ds, hd)
        engine, disturbance = _half_double_rig("trr", radius=2)
        rows["trr-radius2"] = (
            None,
            hammer_pattern(
                engine, disturbance, half_double(100, HALF_DOUBLE_HAMMERS)
            ),
        )
        return {"rows": rows}

    def render(data: FigureData) -> Artifact:
        def cell(outcome) -> str:
            if outcome is None:
                return "-"
            if outcome.any_flip:
                return "FLIP " + ",".join(
                    str(row) for row in outcome.flipped_rows
                )
            return "held"

        return Artifact(
            tables=[
                Table(
                    columns=["defense", "double_sided", "half_double"],
                    rows=[
                        [defense, cell(ds), cell(hd)]
                        for defense, (ds, hd) in data.extras["rows"].items()
                    ],
                )
            ],
        )

    return FigureSpec(render=render, analytic=analytic)
