"""Artifact rendering: tables to markdown, CSV, and optional plots.

Render hooks lay figure data out as :class:`Table` rows; this module
owns every output format so all artifacts look alike:

- **Markdown** (:meth:`Artifact.to_markdown`): a heading, one pipe
  table per :class:`Table`, and the figure's notes — the form both the
  report directory and the benchmark tier's ``-s`` output use.
- **CSV** (:meth:`Table.to_csv`): one file per table, machine-readable
  mirrors of the markdown rows.
- **Plots** (:func:`save_plots`): best-effort line charts when
  matplotlib is importable; the container ships without it, so plotting
  degrades to a no-op instead of a dependency (nothing is ever
  ``pip install``-ed).

Values are formatted once, identically everywhere, by
:func:`format_value` (floats via ``%.6g``), so golden-output tests pin
artifacts byte-for-byte.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


def format_value(value: Any) -> str:
    """The canonical cell rendering (floats ``%.6g``, ``None`` blank)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


@dataclass
class Table:
    """One rectangular slice of an artifact.

    Attributes:
        columns: Header cells.
        rows: Row cells (any scalar; rendered by :func:`format_value`).
        name: Table name within the artifact; the main (or only) table
            uses ``""`` and exports as ``<figure>.csv``, named tables
            as ``<figure>.<name>.csv``.
    """

    columns: Sequence[str]
    rows: List[List[Any]]
    name: str = ""

    def to_csv(self) -> str:
        """The table as CSV text (header plus formatted rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(list(self.columns))
        for row in self.rows:
            writer.writerow([format_value(cell) for cell in row])
        return buffer.getvalue()

    def to_markdown(self) -> str:
        """The table as a GitHub pipe table."""
        lines = [
            "| " + " | ".join(str(c) for c in self.columns) + " |",
            "|" + "|".join(" --- " for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append(
                "| " + " | ".join(format_value(cell) for cell in row) + " |"
            )
        return "\n".join(lines)


@dataclass
class Artifact:
    """One rendered paper figure/table: tables plus prose notes.

    ``name``/``title``/``kind`` are filled from the figure's registry
    record by :func:`repro.report.planner.render_figure`; render hooks
    only supply tables and notes.
    """

    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    name: str = ""
    title: str = ""
    kind: str = "figure"

    def table(self, name: str = "") -> Table:
        """The table registered under ``name`` (``""`` = the main one)."""
        for table in self.tables:
            if table.name == name:
                return table
        raise LookupError(
            f"artifact {self.name!r} has no table {name!r}; "
            f"tables: {[t.name for t in self.tables]}"
        )

    def to_markdown(self) -> str:
        """The whole artifact as one markdown document section."""
        parts = [f"## {self.title}" if self.title else f"## {self.name}"]
        for table in self.tables:
            if table.name:
                parts.append(f"### {table.name}")
            parts.append(table.to_markdown())
        if self.notes:
            parts.append("\n".join(f"- {note}" for note in self.notes))
        return "\n\n".join(parts) + "\n"


def write_artifact(artifact: Artifact, out_dir: str) -> List[str]:
    """Write ``<name>.md`` plus one CSV per table; returns the paths.

    Plots ride along when matplotlib is available (see
    :func:`save_plots`).
    """
    os.makedirs(out_dir, exist_ok=True)
    paths: List[str] = []
    md_path = os.path.join(out_dir, f"{artifact.name}.md")
    with open(md_path, "w", encoding="utf-8") as handle:
        handle.write(artifact.to_markdown())
    paths.append(md_path)
    for table in artifact.tables:
        stem = f"{artifact.name}.{table.name}" if table.name else artifact.name
        csv_path = os.path.join(out_dir, f"{stem}.csv")
        with open(csv_path, "w", encoding="utf-8", newline="") as handle:
            handle.write(table.to_csv())
        paths.append(csv_path)
    paths.extend(save_plots(artifact, out_dir))
    return paths


def _numeric_columns(table: Table) -> List[int]:
    """Indexes of columns whose every non-empty cell is a number."""
    numeric = []
    for index in range(len(table.columns)):
        cells = [row[index] for row in table.rows if row[index] is not None]
        if cells and all(
            isinstance(cell, (int, float)) and not isinstance(cell, bool)
            for cell in cells
        ):
            numeric.append(index)
    return numeric


def save_plots(artifact: Artifact, out_dir: str) -> List[str]:
    """Best-effort PNG line charts, one per plottable table.

    A table plots when its first column can serve as an x axis and at
    least one other column is numeric. Without matplotlib (the
    container default) this is a silent no-op — plots are a bonus
    output, never a dependency.
    """
    try:
        import matplotlib  # noqa: F401

        matplotlib.use("Agg")
        from matplotlib import pyplot
    except Exception:
        return []
    paths: List[str] = []
    for table in artifact.tables:
        numeric = _numeric_columns(table)
        series = [i for i in numeric if i != 0]
        if not series or not table.rows:
            continue
        figure, axes = pyplot.subplots(figsize=(7, 4))
        x = [row[0] for row in table.rows]
        for index in series:
            axes.plot(
                x,
                [row[index] for row in table.rows],
                marker="o",
                label=str(table.columns[index]),
            )
        axes.set_xlabel(str(table.columns[0]))
        axes.set_title(artifact.title or artifact.name)
        axes.legend()
        stem = f"{artifact.name}.{table.name}" if table.name else artifact.name
        path = os.path.join(out_dir, f"{stem}.png")
        figure.savefig(path, dpi=120, bbox_inches="tight")
        pyplot.close(figure)
        paths.append(path)
    return paths
