"""Declarative figure specs: what cells a paper artifact is made of.

A :class:`FigureSpec` is the declarative description of one paper
figure or table: the :class:`~repro.sim.experiment.ExperimentSpec`
list whose cells hold the artifact's data (possibly of mixed
evaluation kinds — a figure may pair ``perf`` bars with ``security``
curves), an optional *analytic* hook for closed-form series that no
evaluation kind computes (the birthday-attack model, the outlier
model, ...), and a render hook turning the resolved data into a
tabular :class:`~repro.report.render.Artifact`.

Specs are built, not written: every figure registers a
``builder(config) -> FigureSpec`` hook with
:func:`repro.registry.register_figure`, and the :class:`ReportConfig`
argument carries the scaled-down simulation knobs (requests per core,
core count, full-suite switch) shared by the whole report, so one
definition serves both CI-sized smoke runs and full reproductions.

The key property: a spec never *runs* anything by itself. Resolution
(:func:`repro.report.planner.resolve_figure`) queries a
:class:`~repro.sim.store.ResultStore` through
:func:`~repro.sim.experiment.run_grid` and executes only the missing
cells, which is what makes full-paper reproduction incremental,
resumable, and shardable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, List, Mapping, Optional, Sequence

from repro.sim.experiment import ExperimentSpec, ResultSet, RunStats
from repro.sim.simulator import SimulationParams
from repro.workloads.suites import ALL_WORKLOADS

#: Figure 14's detailed set (the >10% RRS slowdown club plus GUPS) and
#: one representative per remaining suite; MIXes contribute one entry.
#: This is the default workload subset of every per-workload perf figure
#: that the paper draws over all 78 workloads.
DETAILED_WORKLOADS = (
    "gups",
    "gcc",
    "hmmer",
    "bzip2",
    "zeusmp",
    "astar",
    "sphinx3",
    "xz_17",
    "soplex",
    "lbm",
    "mcf",
    "pr",
    "comm1",
    "canneal",
    "mummer",
    "povray",
    "mix1",
)


@dataclass(frozen=True)
class ReportConfig:
    """Scaled-down simulation knobs shared by every figure of a report.

    The paper simulates 1B instructions x 8 cores per cell; the
    reproduction runs structure-preserving scaled cells (see DESIGN.md).
    One config is threaded through every figure builder so a report is
    internally consistent — and so the benchmark tier and the CLI hit
    the *same* store cells when their knobs agree.

    Attributes:
        requests: Memory requests per simulated core (``perf`` cells).
        cores: Simulated cores per cell.
        time_scale: Threshold/size substitution factor (DESIGN.md).
        seed: Base RNG seed of every ``perf`` cell.
        tracker: Default aggressor-row tracker for ``perf`` cells.
        full: Draw per-workload figures over all 78 workloads instead
            of the detailed subset (tens of minutes).
    """

    requests: int = 25_000
    cores: int = 4
    time_scale: int = 32
    seed: int = 77
    tracker: str = "misra-gries"
    full: bool = False

    @classmethod
    def from_env(cls, **overrides: Any) -> "ReportConfig":
        """A config from the ``REPRO_BENCH_*`` environment knobs.

        ``REPRO_BENCH_REQUESTS``, ``REPRO_BENCH_CORES``, and
        ``REPRO_BENCH_FULL`` scale the report the same way they scale
        the benchmark tier; explicit ``overrides`` win over both.
        """
        values: dict = {}
        if "REPRO_BENCH_REQUESTS" in os.environ:
            values["requests"] = int(os.environ["REPRO_BENCH_REQUESTS"])
        if "REPRO_BENCH_CORES" in os.environ:
            values["cores"] = int(os.environ["REPRO_BENCH_CORES"])
        if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
            values["full"] = True
        values.update(overrides)
        return cls(**values)

    def perf_workloads(self) -> List[str]:
        """The per-workload figure set (all 78 when ``full``)."""
        if self.full:
            return [w.name for w in ALL_WORKLOADS]
        return list(DETAILED_WORKLOADS)

    def perf_params(
        self, trh: int, tracker: Optional[str] = None
    ) -> SimulationParams:
        """This config's :class:`SimulationParams` at one threshold."""
        return SimulationParams(
            trh=trh,
            tracker=tracker or self.tracker,
            num_cores=self.cores,
            requests_per_core=self.requests,
            time_scale=self.time_scale,
            seed=self.seed,
        )

    def scaled(self, **overrides: Any) -> "ReportConfig":
        """A copy with ``overrides`` applied (CLI ``--requests`` etc.)."""
        return replace(self, **overrides)


@dataclass
class FigureData:
    """Everything a figure's render hook (and the benchmark tier's
    assertions) consume: the store-resolved results plus the analytic
    extras.

    Attributes:
        results: Engine results of every cell behind the figure, all
            specs merged (duplicates across specs deduplicated).
        extras: The analytic hook's output (``{}`` when the spec has
            none, or when a shard run skipped it).
        config: The :class:`ReportConfig` the spec was built under.
        stats: Execution accounting summed over the spec's grids —
            ``executed`` is the number of cells actually computed (0
            when the store already held everything).
    """

    results: ResultSet
    extras: Mapping[str, Any]
    config: ReportConfig
    stats: RunStats


@dataclass
class FigureSpec:
    """One paper artifact, declaratively.

    Attributes:
        specs: The experiment grids whose cells hold the figure's
            engine-computed data; may be empty (purely analytic
            artifacts) and may mix evaluation kinds.
        render: ``FigureData -> Artifact`` hook laying the resolved
            data out as tables (see :mod:`repro.report.render`).
        analytic: Optional zero-argument hook computing closed-form
            series no evaluation kind covers; must be deterministic
            and cheap (it is re-run on every resolve, never stored).
    """

    specs: Sequence[ExperimentSpec] = field(default_factory=list)
    render: Callable[[FigureData], Any] = lambda data: None
    analytic: Optional[Callable[[], Mapping[str, Any]]] = None
    #: The config the spec was built under; filled by
    #: :func:`repro.report.planner.build_figure` when the builder
    #: leaves it unset.
    config: Optional[ReportConfig] = None
