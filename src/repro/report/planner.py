"""Resolving figure specs against the result store.

The planner is the thin layer between the figure registry and the
experiment engine: :func:`build_figure` asks a registered builder for
its :class:`~repro.report.spec.FigureSpec`, :func:`resolve_figure`
runs every contained :class:`~repro.sim.experiment.ExperimentSpec`
through :func:`~repro.sim.experiment.run_grid` — with the shared
:class:`~repro.sim.store.ResultStore`, so only cells the store does
not already hold are executed — and :func:`render_figure` hands the
merged results to the spec's render hook.

Resolution composes with everything the engine already does:

- ``store``/``reuse`` make a repeated report incremental (the second
  run of ``repro report --all`` executes zero cells);
- ``shard=(i, n)`` restricts execution to one digest-stable slice of
  every figure's grid, so N hosts sharing a store split a full-paper
  reproduction with no coordination (rendering needs the full grid,
  so shard runs skip the analytic hook and artifacts — a final
  unsharded pass reads everything back and emits them);
- ``jobs`` fans cells out over the engine's process pool, and
  ``pool`` swaps in any other execution backend — e.g. an
  :class:`~repro.sim.pool.SshPool` spanning machines
  (:mod:`repro.sim.pool`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from repro.registry import FIGURES, FigureInfo
from repro.report.render import Artifact
from repro.report.spec import FigureData, FigureSpec, ReportConfig
from repro.sim.experiment import ResultSet, RunStats, run_grid
from repro.sim.store import ResultStore


def build_figure(
    name: str, config: Optional[ReportConfig] = None
) -> Tuple[FigureInfo, FigureSpec]:
    """Build the registered figure ``name`` under ``config``.

    Returns the registry record alongside the built spec; unknown
    names raise with the registered options listed.
    """
    info = FIGURES.get(name)
    config = config or ReportConfig()
    spec = info.builder(config)
    if spec.config is None:
        spec.config = config
    return info, spec


def resolve_figure(
    spec: FigureSpec,
    store: Optional[Union[str, ResultStore]] = None,
    jobs: Optional[int] = None,
    reuse: bool = True,
    shard: Optional[Tuple[int, int]] = None,
    progress: Optional[Callable[[int, int, object], None]] = None,
    pool=None,
) -> FigureData:
    """Execute (only) the missing cells of a figure and collect its data.

    Every experiment spec runs through the engine with the shared
    ``store``: cells already present are reused bit-identically, newly
    computed ones are persisted the moment they complete. The returned
    :class:`FigureData` carries the merged result set, the analytic
    extras, and a summed :class:`~repro.sim.experiment.RunStats`
    (``stats.executed == 0`` means the store served everything; the
    per-host breakdown of a multi-host ``pool`` is not summed across
    grids — read each grid's own stats for that).

    With ``shard`` the run covers one slice of each grid and skips the
    analytic hook (extras are cheap but per-process; the final
    unsharded pass recomputes them with the full grid in hand).
    ``pool`` passes an explicit execution backend
    (:class:`~repro.sim.pool.Pool`) to every grid.
    """
    if isinstance(store, str):
        store = ResultStore(store)
    sets: List[ResultSet] = []
    planned = executed = reused = 0
    workloads = None
    chunks = None
    for experiment in spec.specs:
        results = run_grid(
            experiment,
            max_workers=jobs,
            progress=progress,
            store=store,
            reuse=reuse,
            shard=shard,
            pool=pool,
        )
        stats = results.run_stats
        planned += stats.planned
        executed += stats.executed
        reused += stats.reused
        if stats.workloads is not None:
            workloads = (
                stats.workloads if workloads is None
                else workloads + stats.workloads
            )
        if stats.chunks is not None:
            chunks = stats.chunks if chunks is None else chunks + stats.chunks
        sets.append(results)
    merged = sets[0].merge(*sets[1:]) if sets else ResultSet([])
    extras = {}
    if spec.analytic is not None and shard is None:
        extras = dict(spec.analytic())
    return FigureData(
        results=merged,
        extras=extras,
        config=spec.config or ReportConfig(),
        stats=RunStats(
            planned=planned, executed=executed, reused=reused, shard=shard,
            workloads=workloads, chunks=chunks,
        ),
    )


def render_figure(
    info: FigureInfo, spec: FigureSpec, data: FigureData
) -> Artifact:
    """Render resolved data through the spec's hook, stamped with the
    registry record's name/title/kind."""
    artifact = spec.render(data)
    if not isinstance(artifact, Artifact):
        raise TypeError(
            f"figure {info.name!r}: render hook returned "
            f"{type(artifact).__name__}, expected Artifact"
        )
    artifact.name = info.name
    artifact.title = info.title
    artifact.kind = info.artifact
    return artifact


def reproduce_figure(
    name: str,
    config: Optional[ReportConfig] = None,
    store: Optional[Union[str, ResultStore]] = None,
    jobs: Optional[int] = None,
    pool=None,
) -> Tuple[FigureData, Artifact]:
    """Build, resolve, and render one figure — the one-call form the
    benchmark tier uses (``data`` for assertions, ``artifact`` for the
    human-readable reproduction). ``pool`` forwards an execution
    backend to the figure's grids."""
    info, spec = build_figure(name, config)
    data = resolve_figure(spec, store=store, jobs=jobs, pool=pool)
    return data, render_figure(info, spec, data)
