"""Workloads: trace format, synthetic benchmark profiles, and suites.

The paper drives USIMM with Pin-captured traces of SPEC2006, SPEC2017,
GAP, PARSEC, BIOBENCH and COMMERCIAL benchmarks (plus GUPS and six
mixes — 78 workloads in total). Those traces are proprietary-toolchain
artifacts; this package substitutes a synthetic trace generator whose
per-benchmark *row-activation statistics* (memory intensity, hot-row
counts and rates, footprint, write share) are modelled per named
benchmark, which is the property row-swap overheads actually depend on.
See DESIGN.md's substitution table.
"""

from repro.workloads.trace import TraceRecord, Trace, read_trace, write_trace
from repro.workloads.synthetic import BenchmarkProfile, SyntheticTraceGenerator
from repro.workloads.suites import (
    ALL_WORKLOADS,
    SUITES,
    profile_by_name,
    workloads_in_suite,
    swap_heavy_workloads,
)

__all__ = [
    "TraceRecord",
    "Trace",
    "read_trace",
    "write_trace",
    "BenchmarkProfile",
    "SyntheticTraceGenerator",
    "ALL_WORKLOADS",
    "SUITES",
    "profile_by_name",
    "workloads_in_suite",
    "swap_heavy_workloads",
]
