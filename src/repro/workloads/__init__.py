"""Workloads: trace format, synthetic profiles, suites, and sources.

The paper drives USIMM with Pin-captured traces of SPEC2006, SPEC2017,
GAP, PARSEC, BIOBENCH and COMMERCIAL benchmarks (plus GUPS and six
mixes — 78 workloads in total). Those traces are proprietary-toolchain
artifacts; this package substitutes a synthetic trace generator whose
per-benchmark *row-activation statistics* (memory intensity, hot-row
counts and rates, footprint, write share) are modelled per named
benchmark, which is the property row-swap overheads actually depend on.
See DESIGN.md's substitution table.

Recorded traces are first-class too: any workload can be dumped to the
USIMM on-disk format (``python -m repro trace record``) and replayed
with a ``trace:<path>`` workload string. Both the synthetic generator
and the trace loader emit the same columnar representation
(:class:`~repro.workloads.columnar.ColumnarTrace`), so the simulator hot
path is identical for generated and recorded streams — see DESIGN.md,
"Workload sources".
"""

from repro.workloads.trace import (
    Trace,
    TraceParseError,
    TraceRecord,
    load_trace,
    read_trace,
    save_trace,
    write_trace,
)
from repro.workloads.columnar import ColumnarTrace
from repro.workloads.cache import load_trace_columns
from repro.workloads.synthetic import BenchmarkProfile, SyntheticTraceGenerator
from repro.workloads.sources import (
    TraceWorkload,
    resolve_workload_string,
)
from repro.workloads.suites import (
    ALL_WORKLOADS,
    SUITES,
    WorkloadSpec,
    profile_by_name,
    workloads_in_suite,
    swap_heavy_workloads,
)

__all__ = [
    "TraceRecord",
    "Trace",
    "TraceParseError",
    "read_trace",
    "write_trace",
    "load_trace",
    "save_trace",
    "ColumnarTrace",
    "load_trace_columns",
    "BenchmarkProfile",
    "SyntheticTraceGenerator",
    "TraceWorkload",
    "resolve_workload_string",
    "ALL_WORKLOADS",
    "SUITES",
    "WorkloadSpec",
    "profile_by_name",
    "workloads_in_suite",
    "swap_heavy_workloads",
]
