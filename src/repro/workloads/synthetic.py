"""Synthetic trace generation from per-benchmark activation profiles.

Row-swap mitigation overheads are driven by a workload's row-activation
statistics: how memory-intensive it is (misses per kilo-instruction), how
concentrated its accesses are on a few *hot rows* (which cross the swap
threshold and force swaps), and how large its footprint is. The
:class:`BenchmarkProfile` captures exactly those statistics; the
:class:`SyntheticTraceGenerator` turns a profile into a USIMM-style trace
whose hot rows reproduce the paper's ">800 activations within a 64 ms
window" behaviour for the benchmarks it names as swap-heavy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.config import DRAMOrganization
from repro.workloads.columnar import ColumnarTrace
from repro.workloads.trace import Trace, TraceRecord


@dataclass(frozen=True)
class BenchmarkProfile:
    """Activation-statistics profile of one benchmark.

    Attributes:
        name: Benchmark name (e.g. ``"gcc"``).
        suite: Suite label (e.g. ``"SPEC2K6"``).
        mpki: LLC misses per kilo-instruction (memory intensity).
        write_fraction: Share of misses that are writebacks/stores.
        footprint_rows: Distinct DRAM rows the workload touches.
        hot_row_count: Size of the hot-row set (0 = no hot rows).
        hot_access_fraction: Share of misses landing in the hot set.
        hot_zipf_exponent: Skew within the hot set (1.0 = classic Zipf).
        spread_banks: Banks the *hot set* is spread over; 1 concentrates
            all hot rows in one bank (worst case for swap contention).
        description: One-line provenance note.
    """

    name: str
    suite: str
    mpki: float
    write_fraction: float = 0.25
    footprint_rows: int = 32 * 1024
    hot_row_count: int = 0
    hot_access_fraction: float = 0.0
    hot_zipf_exponent: float = 1.0
    spread_banks: int = 1
    description: str = ""

    def __post_init__(self):
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_access_fraction <= 1.0:
            raise ValueError("hot_access_fraction must be in [0, 1]")
        if self.hot_access_fraction > 0 and self.hot_row_count <= 0:
            raise ValueError("hot_access_fraction needs hot_row_count > 0")
        if self.footprint_rows <= 0:
            raise ValueError("footprint_rows must be positive")

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between misses."""
        return max(0.0, 1000.0 / self.mpki - 1.0)

    @property
    def is_swap_heavy(self) -> bool:
        """Heuristic: does the profile concentrate enough accesses on few
        rows to force frequent swaps at low thresholds?"""
        return self.hot_access_fraction >= 0.05 and self.hot_row_count > 0


# Synthetic generation historically returned its own `GeneratedArrays`
# struct; the columnar representation is now shared with the trace
# loader so both workload sources feed the identical simulator hot path.
GeneratedArrays = ColumnarTrace


class SyntheticTraceGenerator:
    """Generates traces (or columnar arrays) from a profile.

    Args:
        profile: The benchmark profile.
        organization: DRAM organization used for address encoding.
        seed: RNG seed; combine with ``core_id`` for rate-mode instances.
        core_id: Offsets the address region so each core of a rate-mode
            run touches disjoint rows (as separate processes would).
    """

    def __init__(
        self,
        profile: BenchmarkProfile,
        organization: Optional[DRAMOrganization] = None,
        seed: int = 1234,
        core_id: int = 0,
    ):
        self.profile = profile
        self.organization = organization or DRAMOrganization()
        self.mapper = AddressMapper(self.organization)
        self.core_id = core_id
        self.rng = np.random.default_rng((seed << 8) ^ core_id)
        self._hot_slots = self._place_hot_rows()

    # ------------------------------------------------------------------
    # address-space layout

    def _total_slots(self) -> int:
        org = self.organization
        return org.channels * org.ranks_per_channel * org.banks_per_rank * org.rows_per_bank

    def _slot_to_coords(self, slots: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Global row slots -> (channel, rank, bank, row) arrays.

        Consecutive slots stripe across channels then banks, matching the
        interleaving of the address mapper.
        """
        org = self.organization
        channel = slots % org.channels
        rest = slots // org.channels
        bank = rest % org.banks_per_rank
        rest = rest // org.banks_per_rank
        rank = rest % org.ranks_per_channel
        row = rest // org.ranks_per_channel
        return channel, rank, bank, row % org.rows_per_bank

    def _core_base_slot(self) -> int:
        """Start of this core's private row region.

        Placement is drawn from a seeded RNG so different cores — and
        different benchmarks of a mix — land their hot sets in different
        banks, as independently-allocated processes would. The seed is a
        *stable* digest of (benchmark, core): Python's own ``hash()`` of
        a string is randomized per process, which would make traces
        recorded in one process replay differently in the next.
        """
        digest = hashlib.sha256(
            f"{self.profile.name}:{self.core_id}".encode()
        ).digest()
        placement_rng = np.random.default_rng(
            int.from_bytes(digest[:4], "little") ^ 0x9E37
        )
        return int(placement_rng.integers(0, max(1, self._total_slots() // 2)))

    def _place_hot_rows(self) -> np.ndarray:
        """Hot-row global slots, concentrated in ``spread_banks`` banks."""
        profile = self.profile
        if profile.hot_row_count == 0:
            return np.empty(0, dtype=np.int64)
        org = self.organization
        banks = org.channels * org.ranks_per_channel * org.banks_per_rank
        base = self._core_base_slot()
        spread = max(1, min(profile.spread_banks, banks))
        # Row i of the hot set sits in bank (i % spread), at increasing
        # row indices so hot rows are distinct.
        indices = np.arange(profile.hot_row_count, dtype=np.int64)
        return base + (indices % spread) + (indices // spread) * banks

    # ------------------------------------------------------------------
    # generation

    def _zipf_choice(self, count: int) -> np.ndarray:
        """Hot-set indices with Zipf(`hot_zipf_exponent`) popularity."""
        n = self.profile.hot_row_count
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self.profile.hot_zipf_exponent)
        weights /= weights.sum()
        return self.rng.choice(n, size=count, p=weights)

    def generate_arrays(self, num_records: int) -> ColumnarTrace:
        """Columnar generation (the fast path for the simulator)."""
        if num_records <= 0:
            raise ValueError("num_records must be positive")
        profile = self.profile
        org = self.organization
        mean_gap = profile.mean_gap
        if mean_gap > 0:
            gaps = self.rng.geometric(1.0 / (mean_gap + 1.0), size=num_records) - 1
        else:
            gaps = np.zeros(num_records, dtype=np.int64)
        is_write = self.rng.random(num_records) < profile.write_fraction

        slots = np.empty(num_records, dtype=np.int64)
        hot_mask = (
            self.rng.random(num_records) < profile.hot_access_fraction
            if len(self._hot_slots)
            else np.zeros(num_records, dtype=bool)
        )
        num_hot = int(hot_mask.sum())
        if num_hot:
            slots[hot_mask] = self._hot_slots[self._zipf_choice(num_hot)]
        num_cold = num_records - num_hot
        if num_cold:
            base = self._core_base_slot() + len(self._hot_slots)
            cold = base + self.rng.integers(0, profile.footprint_rows, size=num_cold)
            slots[~hot_mask] = cold
        channel, rank, bank, row = self._slot_to_coords(slots)
        column = self.rng.integers(0, org.lines_per_row, size=num_records)
        return ColumnarTrace(
            gaps=gaps.astype(np.int64),
            is_write=is_write,
            channel=channel.astype(np.int16),
            rank=rank.astype(np.int16),
            bank=bank.astype(np.int16),
            row=row.astype(np.int32),
            column=column.astype(np.int32),
        )

    def generate(self, num_records: int) -> Trace:
        """Object-level generation (for the public API and trace files)."""
        arrays = self.generate_arrays(num_records)
        records = []
        for i in range(num_records):
            decoded = DecodedAddress(
                channel=int(arrays.channel[i]),
                rank=int(arrays.rank[i]),
                bank=int(arrays.bank[i]),
                row=int(arrays.row[i]),
                column=int(arrays.column[i]),
            )
            records.append(
                TraceRecord(
                    gap=int(arrays.gaps[i]),
                    is_write=bool(arrays.is_write[i]),
                    address=self.mapper.encode(decoded),
                )
            )
        return Trace(records, name=self.profile.name)
