"""The paper's 78-workload set, as synthetic profiles.

Suites and counts follow Section VI: GUPS, SPEC2006 (29), SPEC2017 (22),
GAP (6), COMMERCIAL (5), PARSEC (7), BIOBENCH (2) and 6 MIXes = 78
workloads. Profile parameters (memory intensity, hot-row structure,
footprint) are modelled per benchmark so that:

- the benchmarks Figure 14 singles out as losing >10% under RRS at
  ``TRH = 1200`` (hmmer, bzip2, gcc, zeusmp, astar, sphinx3, xz_17) have
  strong hot-row sets that cross the swap threshold repeatedly;
- streaming benchmarks (lbm, libquantum, bwaves, ...) have high intensity
  but no row reuse, so they swap rarely;
- GUPS hammers uniformly at very high intensity, which saturates the
  Misra-Gries tracker's spillover counter and forces swaps that way;
- compute-bound benchmarks barely touch memory and see no overhead.

Absolute MPKI values are representative, not measured; the reproduction
depends on the *relative* activation structure (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.synthetic import BenchmarkProfile, SyntheticTraceGenerator


def _p(
    name: str,
    suite: str,
    mpki: float,
    wr: float = 0.25,
    fp: int = 32 * 1024,
    hot: int = 0,
    hot_frac: float = 0.0,
    spread: int = 1,
    note: str = "",
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        suite=suite,
        mpki=mpki,
        write_fraction=wr,
        footprint_rows=fp,
        hot_row_count=hot,
        hot_access_fraction=hot_frac,
        spread_banks=spread,
        description=note,
    )


_PROFILES: List[BenchmarkProfile] = [
    # ------------------------------------------------------------- GUPS
    _p("gups", "GUPS", 120.0, wr=0.5, fp=256 * 1024,
       note="random updates over a huge table; saturates trackers"),
    # --------------------------------------------------------- SPEC2006
    # Hot sets are mildly-skewed (Zipf 0.3) groups of rows whose per-row
    # activation rates sit near the paper's ">800 per 64 ms" regime; the
    # fraction controls how many rows cross the swap threshold.
    _p("perlbench", "SPEC2K6", 1.2, fp=8 * 1024, hot=32, hot_frac=0.015),
    _p("bzip2", "SPEC2K6", 3.2, fp=16 * 1024, hot=64, hot_frac=0.14,
       note=">10% RRS slowdown at TRH=1200 (Fig. 14)"),
    _p("gcc", "SPEC2K6", 5.5, fp=24 * 1024, hot=64, hot_frac=0.28,
       note="worst case: 26.5% RRS slowdown at TRH=1200 (Fig. 14)"),
    _p("bwaves", "SPEC2K6", 18.0, fp=256 * 1024, note="streaming"),
    _p("gamess", "SPEC2K6", 0.4, fp=4 * 1024),
    _p("mcf", "SPEC2K6", 28.0, fp=512 * 1024, hot=256, hot_frac=0.03,
       note="pointer chasing over a big footprint"),
    _p("milc", "SPEC2K6", 15.0, fp=256 * 1024, note="streaming"),
    _p("zeusmp", "SPEC2K6", 5.0, fp=64 * 1024, hot=64, hot_frac=0.12,
       note=">10% RRS slowdown at TRH=1200 (Fig. 14)"),
    _p("gromacs", "SPEC2K6", 1.0, fp=8 * 1024),
    _p("cactusADM", "SPEC2K6", 6.0, fp=96 * 1024, hot=64, hot_frac=0.02),
    _p("leslie3d", "SPEC2K6", 12.0, fp=192 * 1024, note="streaming"),
    _p("namd", "SPEC2K6", 0.7, fp=8 * 1024),
    _p("gobmk", "SPEC2K6", 0.6, fp=4 * 1024),
    _p("dealII", "SPEC2K6", 1.5, fp=16 * 1024, hot=32, hot_frac=0.02),
    _p("soplex", "SPEC2K6", 9.0, fp=96 * 1024, hot=128, hot_frac=0.05),
    _p("povray", "SPEC2K6", 0.2, fp=2 * 1024),
    _p("calculix", "SPEC2K6", 0.8, fp=8 * 1024),
    _p("hmmer", "SPEC2K6", 1.8, fp=4 * 1024, hot=48, hot_frac=0.20,
       note="tiny hot working set; >10% RRS slowdown (Fig. 14)"),
    _p("sjeng", "SPEC2K6", 0.5, fp=4 * 1024),
    _p("GemsFDTD", "SPEC2K6", 14.0, fp=192 * 1024, note="streaming"),
    _p("libquantum", "SPEC2K6", 22.0, fp=64 * 1024, note="streaming"),
    _p("h264ref", "SPEC2K6", 0.9, fp=8 * 1024, hot=16, hot_frac=0.02),
    _p("tonto", "SPEC2K6", 0.5, fp=4 * 1024),
    _p("lbm", "SPEC2K6", 25.0, wr=0.45, fp=256 * 1024, note="streaming"),
    _p("omnetpp", "SPEC2K6", 10.0, fp=128 * 1024, hot=128, hot_frac=0.04),
    _p("astar", "SPEC2K6", 2.6, fp=24 * 1024, hot=48, hot_frac=0.13,
       note=">10% RRS slowdown at TRH=1200 (Fig. 14)"),
    _p("wrf", "SPEC2K6", 6.0, fp=96 * 1024, hot=64, hot_frac=0.02),
    _p("sphinx3", "SPEC2K6", 4.2, fp=32 * 1024, hot=64, hot_frac=0.15,
       note=">10% RRS slowdown at TRH=1200 (Fig. 14)"),
    _p("xalancbmk", "SPEC2K6", 2.2, fp=24 * 1024, hot=48, hot_frac=0.04),
    # --------------------------------------------------------- SPEC2017
    _p("perlbench_17", "SPEC2K17", 1.0, fp=8 * 1024, hot=32, hot_frac=0.015),
    _p("gcc_17", "SPEC2K17", 4.0, fp=24 * 1024, hot=64, hot_frac=0.10),
    _p("bwaves_17", "SPEC2K17", 16.0, fp=256 * 1024, note="streaming"),
    _p("mcf_17", "SPEC2K17", 20.0, fp=384 * 1024, hot=256, hot_frac=0.03),
    _p("cactuBSSN_17", "SPEC2K17", 7.0, fp=96 * 1024, hot=64, hot_frac=0.02),
    _p("namd_17", "SPEC2K17", 0.6, fp=8 * 1024),
    _p("parest_17", "SPEC2K17", 2.0, fp=24 * 1024, hot=64, hot_frac=0.03),
    _p("povray_17", "SPEC2K17", 0.2, fp=2 * 1024),
    _p("lbm_17", "SPEC2K17", 24.0, wr=0.45, fp=256 * 1024, note="streaming"),
    _p("wrf_17", "SPEC2K17", 5.0, fp=96 * 1024, hot=64, hot_frac=0.02),
    _p("blender_17", "SPEC2K17", 1.2, fp=16 * 1024, hot=16, hot_frac=0.01),
    _p("cam4_17", "SPEC2K17", 3.0, fp=48 * 1024, hot=64, hot_frac=0.02),
    _p("imagick_17", "SPEC2K17", 0.7, fp=8 * 1024),
    _p("nab_17", "SPEC2K17", 1.1, fp=8 * 1024),
    _p("fotonik3d_17", "SPEC2K17", 13.0, fp=192 * 1024, note="streaming"),
    _p("roms_17", "SPEC2K17", 10.0, fp=128 * 1024, note="streaming"),
    _p("xz_17", "SPEC2K17", 4.5, fp=32 * 1024, hot=64, hot_frac=0.15,
       note=">10% RRS slowdown at TRH=1200 (Fig. 14)"),
    _p("deepsjeng_17", "SPEC2K17", 0.8, fp=8 * 1024),
    _p("leela_17", "SPEC2K17", 0.4, fp=4 * 1024),
    _p("exchange2_17", "SPEC2K17", 0.1, fp=1024),
    _p("x264_17", "SPEC2K17", 0.9, fp=8 * 1024, hot=16, hot_frac=0.015),
    _p("omnetpp_17", "SPEC2K17", 8.0, fp=128 * 1024, hot=128, hot_frac=0.04),
    # -------------------------------------------------------------- GAP
    _p("bc", "GAP", 24.0, fp=384 * 1024, hot=128, hot_frac=0.07, spread=4,
       note="power-law hub vertices form hot rows"),
    _p("bfs", "GAP", 18.0, fp=384 * 1024, hot=128, hot_frac=0.04, spread=4),
    _p("cc", "GAP", 20.0, fp=384 * 1024, hot=128, hot_frac=0.04, spread=4),
    _p("pr", "GAP", 28.0, fp=384 * 1024, hot=128, hot_frac=0.08, spread=4,
       note="pagerank: frequent hub updates"),
    _p("sssp", "GAP", 22.0, fp=384 * 1024, hot=128, hot_frac=0.05, spread=4),
    _p("tc", "GAP", 12.0, fp=256 * 1024, hot=64, hot_frac=0.05, spread=4),
    # ------------------------------------------------------- COMMERCIAL
    _p("comm1", "COMMERCIAL", 16.0, wr=0.35, fp=192 * 1024, hot=128, hot_frac=0.06, spread=2),
    _p("comm2", "COMMERCIAL", 12.0, wr=0.35, fp=192 * 1024, hot=128, hot_frac=0.05, spread=2),
    _p("comm3", "COMMERCIAL", 9.0, wr=0.30, fp=128 * 1024, hot=96, hot_frac=0.04, spread=2),
    _p("comm4", "COMMERCIAL", 14.0, wr=0.35, fp=192 * 1024, hot=128, hot_frac=0.05, spread=2),
    _p("comm5", "COMMERCIAL", 10.0, wr=0.30, fp=128 * 1024, hot=96, hot_frac=0.04, spread=2),
    # ----------------------------------------------------------- PARSEC
    _p("blackscholes", "PARSEC", 1.0, fp=16 * 1024),
    _p("bodytrack", "PARSEC", 1.5, fp=16 * 1024, hot=32, hot_frac=0.03),
    _p("canneal", "PARSEC", 12.0, fp=256 * 1024, hot=128, hot_frac=0.02,
       note="random pointer chasing"),
    _p("facesim", "PARSEC", 4.0, fp=64 * 1024, hot=64, hot_frac=0.03),
    _p("ferret", "PARSEC", 3.0, fp=48 * 1024, hot=64, hot_frac=0.04),
    _p("fluidanimate", "PARSEC", 2.5, fp=48 * 1024, hot=32, hot_frac=0.02),
    _p("freqmine", "PARSEC", 2.0, fp=32 * 1024, hot=64, hot_frac=0.05),
    # --------------------------------------------------------- BIOBENCH
    _p("mummer", "BIOBENCH", 16.0, fp=256 * 1024, hot=128, hot_frac=0.04),
    _p("tigr", "BIOBENCH", 9.0, fp=128 * 1024, hot=96, hot_frac=0.06),
]

PROFILES: Dict[str, BenchmarkProfile] = {p.name: p for p in _PROFILES}


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload: a name plus the per-core benchmark assignment.

    Single-benchmark workloads run in *rate mode* (every core runs a
    private instance); MIX workloads assign different benchmarks per core,
    cycling when there are more cores than components.
    """

    name: str
    suite: str
    components: Tuple[str, ...]

    def profile_for_core(self, core_id: int) -> BenchmarkProfile:
        """The benchmark profile core ``core_id`` runs (cycling for mixes)."""
        return PROFILES[self.components[core_id % len(self.components)]]

    @property
    def is_mix(self) -> bool:
        """Whether the workload assigns different benchmarks per core."""
        return len(self.components) > 1

    def arrays_for_core(self, core_id, params, organization):
        """Columnar trace arrays for one core (the workload-source hook).

        Every workload source implements this method with the same
        signature; for synthetic workloads it seeds a
        :class:`SyntheticTraceGenerator` from the simulation parameters
        exactly as the simulator always has (``seed + 17 * core_id``),
        so recording and replaying preserve the per-core streams
        bit-for-bit.

        Args:
            core_id: The core the stream is for.
            params: A :class:`~repro.sim.simulator.SimulationParams`
                (only ``seed`` and ``requests_per_core`` are read).
            organization: The simulated DRAM organization.
        """
        generator = SyntheticTraceGenerator(
            self.profile_for_core(core_id),
            organization,
            seed=params.seed + 17 * core_id,
            core_id=core_id,
        )
        return generator.generate_arrays(params.requests_per_core)


_MIXES = [
    ("mix1", ("gcc", "lbm", "hmmer", "mcf")),
    ("mix2", ("bzip2", "libquantum", "sphinx3", "povray")),
    ("mix3", ("zeusmp", "milc", "astar", "namd")),
    ("mix4", ("xz_17", "bwaves_17", "gcc_17", "leela_17")),
    ("mix5", ("pr", "comm1", "canneal", "gobmk")),
    ("mix6", ("gups", "gcc", "lbm", "sjeng")),
]

ALL_WORKLOADS: List[WorkloadSpec] = (
    [WorkloadSpec("gups", "GUPS", ("gups",))]
    + [WorkloadSpec(p.name, p.suite, (p.name,)) for p in _PROFILES if p.suite != "GUPS"]
    + [WorkloadSpec(name, "MIX", comps) for name, comps in _MIXES]
)

SUITES: Tuple[str, ...] = (
    "GUPS",
    "SPEC2K6",
    "SPEC2K17",
    "GAP",
    "COMMERCIAL",
    "PARSEC",
    "BIOBENCH",
    "MIX",
)


def profile_by_name(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile; raises ``KeyError`` with suggestions."""
    try:
        return PROFILES[name]
    except KeyError:
        close = [n for n in PROFILES if n.startswith(name[:3])]
        raise KeyError(f"unknown benchmark {name!r}; close matches: {close}") from None


def workloads_in_suite(suite: str) -> List[WorkloadSpec]:
    """All workloads of one suite (e.g. ``"GAP"``), suite order."""
    return [w for w in ALL_WORKLOADS if w.suite == suite]


def swap_heavy_workloads() -> List[WorkloadSpec]:
    """The Figure 14 detailed subset: workloads with at least one row
    crossing 800 activations per 64 ms window (plus GUPS)."""
    heavy = []
    for spec in ALL_WORKLOADS:
        profiles = [PROFILES[c] for c in spec.components]
        if any(p.is_swap_heavy or p.suite == "GUPS" for p in profiles):
            heavy.append(spec)
    return heavy
