"""On-disk cache for parsed trace files.

Parsing a USIMM text trace is a per-line Python loop — by far the
slowest step of replaying a recorded workload, and one a grid run would
otherwise repeat for every (mitigation, TRH) cell that names the same
trace. This module persists the parsed columns (gaps, write flags, raw
byte addresses) as a compressed ``.npz`` next to a key derived from the
source path, and validates each hit against the source file's current
``(mtime_ns, size)``: editing or regenerating the trace invalidates the
entry automatically, and a corrupt or truncated cache file falls back to
a fresh parse.

The cache stores *addresses*, not decoded coordinates, because decoding
depends on the simulated :class:`~repro.dram.config.DRAMOrganization`;
decode is vectorized and cheap, so one cache entry serves every
geometry.

The cache directory defaults to ``~/.cache/repro/traces`` and can be
redirected with the ``REPRO_TRACE_CACHE`` environment variable (tests
point it at a temp dir; set it to an empty string to disable caching).
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.workloads.trace import open_trace, parse_trace_columns

ENV_CACHE_DIR = "REPRO_TRACE_CACHE"

_CACHE_VERSION = 1


def cache_dir() -> Optional[Path]:
    """The active cache directory, or ``None`` when caching is disabled."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override is not None:
        return Path(override) if override else None
    return Path.home() / ".cache" / "repro" / "traces"


def cache_entry_path(trace_path: str, directory: Optional[Path] = None) -> Optional[Path]:
    """Cache file location for a trace path (``None`` if caching is off)."""
    base = directory if directory is not None else cache_dir()
    if base is None:
        return None
    digest = hashlib.sha256(str(Path(trace_path).resolve()).encode()).hexdigest()[:24]
    return base / f"{Path(trace_path).name}.{digest}.npz"


def _source_stamp(trace_path: str) -> Tuple[int, int]:
    """The (mtime_ns, size) pair a cache entry is validated against."""
    stat = os.stat(trace_path)
    return stat.st_mtime_ns, stat.st_size


def _load_entry(
    entry: Path, stamp: Tuple[int, int]
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """A valid cached parse, or ``None`` (stale, corrupt, or missing)."""
    try:
        with np.load(entry) as data:
            if int(data["version"]) != _CACHE_VERSION:
                return None
            if (int(data["mtime_ns"]), int(data["size"])) != stamp:
                return None
            return data["gaps"], data["is_write"], data["addresses"]
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        return None


def load_trace_columns(
    trace_path: str,
    name: str = "",
    directory: Optional[Path] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse a trace file into ``(gaps, is_write, addresses)``, cached.

    Args:
        trace_path: The USIMM text trace (``.gz`` transparently handled).
        name: Trace name used in parse-error messages (default: the path).
        directory: Cache directory override; defaults to :func:`cache_dir`
            (``None`` there disables caching entirely).
    """
    name = name or str(trace_path)
    entry = cache_entry_path(trace_path, directory)
    stamp = _source_stamp(trace_path)
    if entry is not None:
        cached = _load_entry(entry, stamp)
        if cached is not None:
            return cached

    with open_trace(trace_path) as stream:
        gaps, is_write, addresses = parse_trace_columns(stream, name=name)

    if entry is not None:
        entry.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename, with a per-process temp name so parallel grid
        # workers parsing the same trace cannot corrupt each other's entry.
        tmp = entry.with_suffix(f".tmp{os.getpid()}.npz")
        np.savez_compressed(
            tmp,
            version=_CACHE_VERSION,
            mtime_ns=stamp[0],
            size=stamp[1],
            gaps=gaps,
            is_write=is_write,
            addresses=addresses,
        )
        os.replace(tmp, entry)
    return gaps, is_write, addresses
