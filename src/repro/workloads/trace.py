"""Memory-access trace format (USIMM-style).

A trace is a sequence of LLC-miss records. Each record carries the number
of non-memory instructions preceding the access (the *gap*), whether it is
a read or write, and the physical byte address. The on-disk format is one
record per line: ``<gap> <R|W> <hex address>`` — the shape USIMM's trace
readers expect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Union


@dataclass(frozen=True)
class TraceRecord:
    """One memory access: preceded by ``gap`` non-memory instructions."""

    gap: int
    is_write: bool
    address: int

    def __post_init__(self):
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")


class Trace:
    """An in-memory trace with summary statistics."""

    def __init__(self, records: Iterable[TraceRecord], name: str = "trace"):
        self.records: List[TraceRecord] = list(records)
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    @property
    def total_instructions(self) -> int:
        """Instructions represented: gaps plus one per memory access."""
        return sum(r.gap for r in self.records) + len(self.records)

    @property
    def write_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.is_write) / len(self.records)

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction implied by the trace."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self.records) / instructions

    def address_footprint(self, granularity_bits: int = 13) -> int:
        """Distinct address blocks touched (default 8 KB rows)."""
        return len({r.address >> granularity_bits for r in self.records})


def write_trace(trace: Trace, stream: IO[str]) -> int:
    """Serialize a trace; returns records written."""
    n = 0
    for record in trace:
        op = "W" if record.is_write else "R"
        stream.write(f"{record.gap} {op} 0x{record.address:x}\n")
        n += 1
    return n


def read_trace(stream: Union[IO[str], Iterable[str]], name: str = "trace") -> Trace:
    """Parse a trace from the one-record-per-line format."""
    records = []
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"line {line_no}: expected '<gap> <R|W> <addr>'")
        gap_text, op, addr_text = parts
        if op not in ("R", "W"):
            raise ValueError(f"line {line_no}: op must be R or W, got {op!r}")
        records.append(
            TraceRecord(
                gap=int(gap_text),
                is_write=(op == "W"),
                address=int(addr_text, 16),
            )
        )
    return Trace(records, name=name)
