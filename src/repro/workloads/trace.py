"""Memory-access trace format (USIMM-style).

A trace is a sequence of LLC-miss records. Each record carries the number
of non-memory instructions preceding the access (the *gap*), whether it is
a read or write, and the physical byte address. The on-disk format is one
record per line: ``<gap> <R|W> <hex address>`` — the shape USIMM's trace
readers expect. Blank lines and ``#`` comments are ignored; files ending
in ``.gz`` are transparently gzip-compressed.

Two in-memory representations exist. :class:`Trace` (lists of
:class:`TraceRecord`) is the convenient object form for inspection and
small files; :func:`parse_trace_columns` feeds the columnar fast path
(:class:`repro.workloads.columnar.ColumnarTrace`) that the simulator and
the on-disk cache use.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Tuple, Union

import numpy as np


class TraceParseError(ValueError):
    """A malformed trace line, reporting the trace name and line number."""

    def __init__(self, name: str, line_no: int, message: str):
        super().__init__(f"{name}: line {line_no}: {message}")
        self.name = name
        self.line_no = line_no


@dataclass(frozen=True)
class TraceRecord:
    """One memory access: preceded by ``gap`` non-memory instructions."""

    gap: int
    is_write: bool
    address: int

    def __post_init__(self):
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")


class Trace:
    """An in-memory trace with summary statistics.

    Summary statistics (:attr:`total_instructions`,
    :attr:`write_fraction`) are computed once at construction — the
    record list is treated as immutable after ``__init__``.
    """

    def __init__(self, records: Iterable[TraceRecord], name: str = "trace"):
        self.records: List[TraceRecord] = list(records)
        self.name = name
        self._total_instructions = sum(r.gap for r in self.records) + len(self.records)
        writes = sum(1 for r in self.records if r.is_write)
        self._write_fraction = writes / len(self.records) if self.records else 0.0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    @property
    def total_instructions(self) -> int:
        """Instructions represented: gaps plus one per memory access."""
        return self._total_instructions

    @property
    def write_fraction(self) -> float:
        """Share of records that are writes (0.0 for an empty trace)."""
        return self._write_fraction

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction implied by the trace."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self.records) / instructions

    def address_footprint(self, granularity_bits: int = 13) -> int:
        """Distinct address blocks touched (default 8 KB rows)."""
        return len({r.address >> granularity_bits for r in self.records})


def write_trace(trace: Trace, stream: IO[str]) -> int:
    """Serialize a trace; returns records written."""
    n = 0
    for record in trace:
        op = "W" if record.is_write else "R"
        stream.write(f"{record.gap} {op} 0x{record.address:x}\n")
        n += 1
    return n


def _parse_line(name: str, line_no: int, line: str) -> Tuple[int, bool, int]:
    """One stripped, non-empty trace line -> (gap, is_write, address)."""
    parts = line.split()
    if len(parts) != 3:
        raise TraceParseError(name, line_no, "expected '<gap> <R|W> <addr>'")
    gap_text, op, addr_text = parts
    if op not in ("R", "W"):
        raise TraceParseError(name, line_no, f"op must be R or W, got {op!r}")
    try:
        gap = int(gap_text)
        address = int(addr_text, 16)
    except ValueError:
        raise TraceParseError(
            name, line_no, f"bad gap or address in {line!r}"
        ) from None
    if gap < 0 or address < 0:
        raise TraceParseError(name, line_no, "gap and address must be non-negative")
    return gap, op == "W", address


def read_trace(stream: Union[IO[str], Iterable[str]], name: str = "trace") -> Trace:
    """Parse a trace from the one-record-per-line format.

    Malformed lines raise :class:`TraceParseError` carrying ``name`` and
    the 1-based line number.
    """
    records = []
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        gap, is_write, address = _parse_line(name, line_no, line)
        records.append(TraceRecord(gap=gap, is_write=is_write, address=address))
    return Trace(records, name=name)


def parse_trace_columns(
    stream: Union[IO[str], Iterable[str]], name: str = "trace"
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse a trace into ``(gaps, is_write, addresses)`` numpy arrays.

    The columnar loader path: no per-record objects are created, and the
    result is what the trace cache persists. Empty (or comment-only)
    traces yield zero-length, correctly-typed arrays.
    """
    gaps: List[int] = []
    writes: List[bool] = []
    addresses: List[int] = []
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        gap, is_write, address = _parse_line(name, line_no, line)
        gaps.append(gap)
        writes.append(is_write)
        addresses.append(address)
    return (
        np.array(gaps, dtype=np.int64),
        np.array(writes, dtype=bool),
        np.array(addresses, dtype=np.int64),
    )


def open_trace(path: str, mode: str = "rt") -> IO[str]:
    """Open a trace file for text IO, transparently gzipped for ``.gz``."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode, encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def load_trace(path: str, name: str = "") -> Trace:
    """Read a trace file (gzip-aware); ``name`` defaults to the path."""
    name = name or str(path)
    with open_trace(path) as stream:
        return read_trace(stream, name=name)


def save_trace(trace: Trace, path: str) -> int:
    """Write a trace file (gzip-aware); returns records written."""
    with open_trace(path, "wt") as stream:
        return write_trace(trace, stream)
