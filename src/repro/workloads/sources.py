"""Workload sources: pluggable producers of per-core columnar traces.

A *workload source* owns a prefix in workload strings
(``<prefix>:<spec>``) and resolves the spec into a workload object the
simulator drives through one uniform hook::

    workload.arrays_for_core(core_id, params, organization)
        -> ColumnarTrace

Two sources are built in and self-register with
:func:`repro.registry.register_workload_source` (exactly like
mitigations and trackers do with their registries):

- ``synthetic`` — the default for plain names: ``gcc``, ``mix1``, and
  ``synthetic:gcc`` all resolve to the named
  :class:`~repro.workloads.suites.WorkloadSpec` of the 78-workload
  suite, generated per core by the
  :class:`~repro.workloads.synthetic.SyntheticTraceGenerator`.
- ``trace`` — file-backed replay: ``trace:/path/to/run`` resolves to a
  :class:`TraceWorkload` that loads recorded USIMM traces (through the
  mtime-keyed :mod:`repro.workloads.cache`) and decodes them with the
  simulated organization's address mapper. The path may be a single
  trace file (every core replays the same stream, rate-mode style) or a
  directory of per-core files as written by
  :func:`repro.sim.recorder.record_workload`.

Both sources emit the same :class:`~repro.workloads.columnar.ColumnarTrace`
shape, so recorded and synthetic workloads run through the identical
simulator hot path — which is what makes record→replay bit-deterministic.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Tuple

from repro.dram.address import AddressMapper
from repro.dram.config import DRAMOrganization
from repro.registry import (
    WORKLOAD_SOURCES,
    register_workload_source,
    workload_source_names,
)
from repro.workloads.columnar import ColumnarTrace
from repro.workloads.suites import ALL_WORKLOADS, WorkloadSpec

#: Filename patterns recognised as trace files inside a trace directory.
TRACE_FILE_GLOBS: Tuple[str, ...] = ("*.trace", "*.trace.gz", "*.usimm", "*.usimm.gz")


def resolve_synthetic_name(name: str) -> WorkloadSpec:
    """Look up a named workload of the built-in suite.

    Raises ``KeyError`` (with the unknown name) when no workload
    matches, mirroring :func:`repro.workloads.suites.profile_by_name`.
    """
    for spec in ALL_WORKLOADS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown workload {name!r}")


def _natural_key(path: Path) -> List[Any]:
    """Sort key ordering ``core2`` before ``core10``."""
    return [
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", path.name)
    ]


@register_workload_source(
    "trace",
    resolver=lambda spec_text: TraceWorkload(path=spec_text),
    description="replay a recorded USIMM trace file or per-core directory",
)
@dataclass(frozen=True)
class TraceWorkload:
    """A workload replayed from recorded USIMM trace files.

    Attributes:
        path: A trace file, or a directory of per-core trace files
            (``core0.trace`` ... as written by ``trace record``). With a
            directory, core ``i`` replays file ``i % len(files)`` in
            natural-sorted order; with a single file every core replays
            the same stream (rate mode).
        name: Workload name used in results; defaults to
            ``trace:<path>`` so replays are self-describing in tables
            and exports.
        suite: Suite label carried into results (default ``TRACE``).
    """

    path: str
    name: str = ""
    suite: str = "TRACE"

    def __post_init__(self):
        if not self.name:
            object.__setattr__(self, "name", f"trace:{self.path}")

    @property
    def is_mix(self) -> bool:
        """Trace directories with several per-core files act like mixes."""
        return len(self.core_files()) > 1

    def core_files(self) -> List[str]:
        """The trace file(s) backing this workload, in core order.

        Raises ``FileNotFoundError`` for a missing path and
        ``ValueError`` for a directory containing no recognisable trace
        files (see :data:`TRACE_FILE_GLOBS`).
        """
        root = Path(self.path)
        if root.is_dir():
            files = sorted(
                {f for pattern in TRACE_FILE_GLOBS for f in root.glob(pattern)},
                key=_natural_key,
            )
            if not files:
                raise ValueError(
                    f"trace directory {self.path!r} contains no trace files "
                    f"(looked for {', '.join(TRACE_FILE_GLOBS)})"
                )
            return [str(f) for f in files]
        if not root.exists():
            raise FileNotFoundError(f"trace path {self.path!r} does not exist")
        return [str(root)]

    def columns_for_file(self, file_path: str):
        """Cached ``(gaps, is_write, addresses)`` columns of one file.

        Goes through the workload plane's in-process memo (itself backed
        by the on-disk parsed-trace cache), so a rate-mode directory
        whose single file every core replays is loaded once per process
        rather than once per core. With ``REPRO_WORKLOAD_PLANE=off``
        this is a plain :func:`~repro.workloads.cache.load_trace_columns`
        call.
        """
        from repro.workloads import plane

        return plane.file_columns(file_path)

    def store_fingerprint(self) -> List[Tuple[str, int, int]]:
        """Content token for the result store: ``(basename, mtime_ns,
        size)`` per backing file, core order.

        The same invalidation key the parsed-trace cache uses: replaying
        the identical path after re-recording it must be a different
        cell as far as persisted results are concerned (see
        :mod:`repro.sim.store`).
        """
        out = []
        for file_path in self.core_files():
            stat = os.stat(file_path)
            out.append(
                (os.path.basename(file_path), stat.st_mtime_ns, stat.st_size)
            )
        return out

    def arrays_for_core(
        self, core_id: int, params: Any, organization: DRAMOrganization
    ) -> ColumnarTrace:
        """Columnar replay arrays for one core (the workload-source hook).

        The recorded byte addresses are decoded with ``organization``'s
        mapper, and the stream is truncated to
        ``params.requests_per_core`` when the recording is longer (a
        shorter recording replays in full).
        """
        files = self.core_files()
        gaps, is_write, addresses = self.columns_for_file(
            files[core_id % len(files)]
        )
        arrays = ColumnarTrace.from_addresses(
            gaps, is_write, addresses, AddressMapper(organization)
        )
        return arrays.take(params.requests_per_core)


# The synthetic suite registers as the `synthetic` source; plain
# (colon-free) workload names fall through to it in
# `resolve_workload_string`, so `gcc` and `synthetic:gcc` are the same
# workload.
register_workload_source(
    "synthetic",
    resolver=resolve_synthetic_name,
    description="named profile or mix from the built-in 78-workload suite",
)(WorkloadSpec)


def resolve_workload_string(text: str) -> Any:
    """Resolve a workload string through the workload-source registry.

    ``<prefix>:<spec>`` dispatches to the registered source; a plain
    name resolves through the ``synthetic`` suite. Unknown prefixes
    raise ``ValueError`` naming the registered options.
    """
    prefix, sep, rest = text.partition(":")
    if sep and prefix in WORKLOAD_SOURCES:
        return WORKLOAD_SOURCES.get(prefix).resolver(rest)
    if sep:
        raise ValueError(
            f"unknown workload source prefix {prefix!r} in {text!r}; "
            f"registered prefixes: {workload_source_names()}"
        )
    return resolve_synthetic_name(text)
