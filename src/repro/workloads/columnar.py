"""Columnar (struct-of-arrays) memory-access traces.

:class:`ColumnarTrace` is the representation the simulator hot path
consumes: one numpy array per field (instruction gaps, read/write flags,
and the decoded DRAM coordinates), indexed by record position. Both
workload sources — the synthetic generator and the file-backed trace
loader — produce this exact shape, so a recorded trace replays through
the identical simulation code as a synthetic one (see DESIGN.md,
"Workload sources").

The columnar form exists because the object form
(:class:`repro.workloads.trace.TraceRecord` lists) costs one Python
object and one ``mapper.decode`` call per record; over the millions of
records of a grid run that dominates wall-clock time. Conversions to and
from byte addresses are vectorized through
:meth:`repro.dram.address.AddressMapper.encode_arrays` /
:meth:`~repro.dram.address.AddressMapper.decode_arrays`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dram.address import AddressMapper


@dataclass(frozen=True)
class ShmTraceLayout:
    """Picklable description of one trace inside a shared-memory segment.

    A coordinator serializes a :class:`ColumnarTrace` into one
    ``multiprocessing.shared_memory`` segment (columns concatenated in
    field order) and ships this layout to workers, which rebuild
    zero-copy views with :meth:`ColumnarTrace.from_shm`.

    Attributes:
        name: The shared-memory segment name to attach.
        fields: Per-column ``(field, dtype, length)`` in segment order.
    """

    name: str
    fields: Tuple[Tuple[str, str, int], ...]


@dataclass
class ColumnarTrace:
    """A memory-access trace as parallel numpy columns.

    Attributes:
        gaps: Non-memory instructions preceding each access (int64).
        is_write: Write flags (bool).
        channel: DRAM channel of each access (int16).
        rank: DRAM rank (int16).
        bank: DRAM bank (int16).
        row: DRAM row (int32).
        column: Cache-line column within the row (int32).
    """

    gaps: np.ndarray
    is_write: np.ndarray
    channel: np.ndarray
    rank: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    column: np.ndarray

    _FIELDS = ("gaps", "is_write", "channel", "rank", "bank", "row", "column")

    def __len__(self) -> int:
        return len(self.gaps)

    @property
    def total_instructions(self) -> int:
        """Instructions represented: gaps plus one per memory access."""
        return int(self.gaps.sum()) + len(self)

    @property
    def write_fraction(self) -> float:
        """Share of accesses that are writes (0.0 for an empty trace)."""
        if len(self) == 0:
            return 0.0
        return float(self.is_write.sum()) / len(self)

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction implied by the trace."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self) / instructions

    def row_footprint(self) -> int:
        """Distinct (channel, rank, bank, row) tuples touched."""
        if len(self) == 0:
            return 0
        stacked = np.stack(
            [
                self.channel.astype(np.int64),
                self.rank.astype(np.int64),
                self.bank.astype(np.int64),
                self.row.astype(np.int64),
            ]
        )
        return len(np.unique(stacked, axis=1).T)

    def take(self, count: int) -> "ColumnarTrace":
        """The first ``count`` records as a new (view-backed) trace."""
        if count >= len(self):
            return self
        return ColumnarTrace(
            **{name: getattr(self, name)[:count] for name in self._FIELDS}
        )

    def encode_addresses(self, mapper: AddressMapper) -> np.ndarray:
        """Physical byte addresses of every access (vectorized encode)."""
        return mapper.encode_arrays(
            self.channel, self.rank, self.bank, self.row, self.column
        )

    @classmethod
    def from_addresses(
        cls,
        gaps: np.ndarray,
        is_write: np.ndarray,
        addresses: np.ndarray,
        mapper: AddressMapper,
    ) -> "ColumnarTrace":
        """Build a columnar trace from raw byte addresses.

        This is the loader path: trace files store addresses, and the
        mapper of the *simulated* organization decodes them into
        coordinates (vectorized), so the same file can replay under any
        geometry whose mapper covers the addresses.
        """
        channel, rank, bank, row, column = mapper.decode_arrays(addresses)
        return cls(
            gaps=np.asarray(gaps, dtype=np.int64),
            is_write=np.asarray(is_write, dtype=bool),
            channel=channel.astype(np.int16),
            rank=rank.astype(np.int16),
            bank=bank.astype(np.int16),
            row=row.astype(np.int32),
            column=column.astype(np.int32),
        )

    @classmethod
    def empty(cls) -> "ColumnarTrace":
        """A zero-record trace with correctly typed columns."""
        return cls(
            gaps=np.empty(0, dtype=np.int64),
            is_write=np.empty(0, dtype=bool),
            channel=np.empty(0, dtype=np.int16),
            rank=np.empty(0, dtype=np.int16),
            bank=np.empty(0, dtype=np.int16),
            row=np.empty(0, dtype=np.int32),
            column=np.empty(0, dtype=np.int32),
        )

    def to_shm(self, name: str):
        """Copy this trace into a new shared-memory segment.

        Returns ``(shm, layout)``: the created
        ``multiprocessing.shared_memory.SharedMemory`` (the caller owns
        its lifecycle — ``close()`` and ``unlink()``) and the
        :class:`ShmTraceLayout` a worker needs to attach. Columns are
        copied back-to-back in ``_FIELDS`` order.
        """
        from multiprocessing import shared_memory

        columns = [
            np.ascontiguousarray(getattr(self, field))
            for field in self._FIELDS
        ]
        total = max(1, sum(column.nbytes for column in columns))
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        offset = 0
        fields = []
        for field, column in zip(self._FIELDS, columns):
            target = np.ndarray(
                column.shape, dtype=column.dtype,
                buffer=shm.buf, offset=offset,
            )
            target[...] = column
            fields.append((field, column.dtype.str, len(column)))
            offset += column.nbytes
        return shm, ShmTraceLayout(name=shm.name, fields=tuple(fields))

    @classmethod
    def from_shm(cls, shm, layout: ShmTraceLayout) -> "ColumnarTrace":
        """Rebuild a trace as zero-copy views over an attached segment.

        ``shm`` is an already-attached ``SharedMemory`` whose buffer the
        views borrow — the caller must keep it open for the life of the
        returned trace. The views are marked read-only: plane-shared
        traces are immutable by contract.
        """
        offset = 0
        columns = {}
        for field, dtype_str, length in layout.fields:
            dtype = np.dtype(dtype_str)
            view = np.ndarray(
                (length,), dtype=dtype, buffer=shm.buf, offset=offset
            )
            view.flags.writeable = False
            columns[field] = view
            offset += dtype.itemsize * length
        return cls(**columns)

    def equals(self, other: "ColumnarTrace") -> bool:
        """Exact per-column equality (the record→replay determinism check)."""
        return len(self) == len(other) and all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in self._FIELDS
        )
