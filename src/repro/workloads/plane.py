"""The workload plane: workload bytes as a shared, cached resource.

Every grid cell used to pay a private fixed cost before its first
simulated access: resolve the workload, regenerate (or re-read and
re-decode) the per-core columnar traces, and — under the batched
engine — re-``tolist`` the columns into Python lists. A
``mitigations x trackers x trh`` grid shares one workload across all
of those cells, so the work is pure redundancy. This module makes the
workload bytes a plane-wide resource instead, in three layers:

1. **Per-worker memoization** — :func:`traces_for` resolves a
   workload's per-core :class:`~repro.workloads.columnar.ColumnarTrace`
   arrays through a process-wide LRU keyed by the same fingerprint-free
   ingredients the result store digests (workload identity +
   generation-relevant parameters + DRAM organization), plus the PR-5
   ``store_fingerprint()`` for file-backed workloads so re-recording a
   trace invalidates the cache. :func:`cached_decode` gives the batched
   engine the same treatment for its decoded-list product, and
   :func:`file_columns` memoizes parsed trace files in-process (a
   rate-mode directory with one file is loaded once, not once per core).

2. **Zero-copy distribution** — a grid coordinator materializes each
   distinct workload of the plan once and publishes its columns via
   ``multiprocessing.shared_memory`` (:class:`PlanePublisher`);
   :class:`~repro.sim.pool.ProcessPool` workers attach read-only
   (:func:`offer` + :func:`traces_for`) instead of regenerating. The
   publisher owns the segment lifecycle: :meth:`PlanePublisher.close`
   unlinks every segment on success, cell failure, and the Ctrl-C
   drain path, so ``/dev/shm`` never leaks.

3. **Cache-affine scheduling** — :func:`affinity_order` groups a run's
   pending cells by workload key (largest expected cost first within a
   group) so per-worker caches actually hit; see
   :class:`~repro.sim.pool.ProcessPool`.

Accounting flows through :class:`PlaneStats` (surfaced as the greppable
``workloads: generated N, attached M, decode hits K`` line); workers
aggregate into shared counters installed by :func:`init_worker`. The
``REPRO_WORKLOAD_PLANE=off`` escape hatch restores the pre-plane
behavior bit-for-bit — results are identical either way (the plane
caches exactly what generation would have produced), pinned by the
equivalence and fuzz suites run under both modes.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.workloads.columnar import ColumnarTrace, ShmTraceLayout
from repro.workloads.suites import WorkloadSpec

#: Escape hatch: set to ``off`` (or ``0``/``no``/``false``) to restore
#: per-cell workload generation everywhere (debugging, benchmarking).
ENV_PLANE = "REPRO_WORKLOAD_PLANE"

#: LRU capacity overrides (entries, not bytes).
ENV_TRACE_CAPACITY = "REPRO_WORKLOAD_PLANE_TRACES"
ENV_DECODED_CAPACITY = "REPRO_WORKLOAD_PLANE_DECODED"

#: Cap on bytes the coordinator publishes to shared memory per run;
#: workloads beyond the cap fall back to per-worker generation.
ENV_SHM_MB = "REPRO_WORKLOAD_PLANE_SHM_MB"

_DEFAULT_TRACE_CAPACITY = 8
_DEFAULT_DECODED_CAPACITY = 6
_DEFAULT_SHM_MB = 512

_STAT_FIELDS = ("generated", "attached", "trace_hits", "decode_hits")


def plane_enabled() -> bool:
    """Whether the plane is active (default yes; see :data:`ENV_PLANE`)."""
    value = os.environ.get(ENV_PLANE, "on").strip().lower()
    return value not in ("off", "0", "no", "false")


def _capacity(env: str, default: int) -> int:
    """Entry capacity of one LRU, with a floor of 1."""
    try:
        return max(1, int(os.environ.get(env, default)))
    except ValueError:
        return default


@dataclass(frozen=True)
class PlaneStats:
    """Workload-plane accounting of one run (rolled into ``RunStats``).

    Attributes:
        generated: Workload materializations computed from scratch
            (synthetic generation or trace parse+decode).
        attached: Materializations served by attaching a published
            shared-memory segment instead of regenerating.
        trace_hits: Materializations served by the in-process trace LRU.
        decode_hits: Batched-engine decoded-list products served from
            the in-process decode LRU instead of re-``tolist``-ing.
    """

    generated: int = 0
    attached: int = 0
    trace_hits: int = 0
    decode_hits: int = 0

    def __add__(self, other: "PlaneStats") -> "PlaneStats":
        """Field-wise sum (aggregation across grids)."""
        return PlaneStats(
            *(
                getattr(self, name) + getattr(other, name)
                for name in _STAT_FIELDS
            )
        )

    def __sub__(self, other: "PlaneStats") -> "PlaneStats":
        """Field-wise difference (delta between two snapshots)."""
        return PlaneStats(
            *(
                getattr(self, name) - getattr(other, name)
                for name in _STAT_FIELDS
            )
        )

    def __bool__(self) -> bool:
        """True when the plane did anything at all this run."""
        return any(getattr(self, name) for name in _STAT_FIELDS)

    @property
    def line(self) -> str:
        """The greppable accounting line CLI runs and benchmarks print."""
        return (
            f"workloads: generated {self.generated}, attached "
            f"{self.attached}, decode hits {self.decode_hits} "
            f"(trace hits {self.trace_hits})"
        )


# ----------------------------------------------------------------------
# process-wide state
#
# One plane per process: the caches below are module-level by design —
# a ProcessPool worker's cache must survive across the cells it runs.
# `reset()` (tests, worker initialization) clears everything.


@dataclass
class _TraceEntry:
    """One cached workload materialization (plus its shm handles)."""

    traces: List[ColumnarTrace]
    shms: List[Any]


_trace_cache: "OrderedDict[str, _TraceEntry]" = OrderedDict()
_decoded_cache: "OrderedDict[Tuple, Any]" = OrderedDict()
_file_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
_offers: Dict[str, "ShmWorkloadRef"] = {}
_local_stats: Dict[str, int] = {name: 0 for name in _STAT_FIELDS}
_shared_counters: Optional[Dict[str, Any]] = None
#: Shared-memory objects whose close() hit exported buffers; retried on
#: later evictions so their __del__ never warns mid-run.
_retired_shms: List[Any] = []
_segment_seq = itertools.count()


def _bump(name: str, count: int = 1) -> None:
    """Increment one counter (shared when installed, else local)."""
    if _shared_counters is not None:
        value = _shared_counters[name]
        with value.get_lock():
            value.value += count
    else:
        _local_stats[name] += count


def local_stats() -> PlaneStats:
    """Snapshot of this process's local plane counters."""
    return PlaneStats(**dict(_local_stats))


def make_shared_counters() -> Dict[str, Any]:
    """Cross-process counters a coordinator hands to pool workers."""
    import multiprocessing

    return {name: multiprocessing.Value("q", 0) for name in _STAT_FIELDS}


def snapshot_shared(counters: Dict[str, Any]) -> PlaneStats:
    """Read shared counters back into a :class:`PlaneStats`."""
    return PlaneStats(**{name: int(counters[name].value) for name in _STAT_FIELDS})


def init_worker(counters: Optional[Dict[str, Any]]) -> None:
    """Pool-worker initializer: cold caches plus shared counters.

    Clearing the caches here makes worker behavior independent of the
    multiprocessing start method — a forked worker drops state inherited
    from the coordinator and visibly *attaches* published workloads, so
    the accounting means the same thing under fork and spawn.
    """
    global _shared_counters
    reset()
    _shared_counters = counters


def reset() -> None:
    """Drop every cache, offer, and local counter (tests, worker init)."""
    global _local_stats
    for cache in (_trace_cache, _decoded_cache, _file_cache):
        while cache:
            _, entry = cache.popitem(last=False)
            if isinstance(entry, _TraceEntry):
                _release_entry(entry)
    _offers.clear()
    _local_stats = {name: 0 for name in _STAT_FIELDS}
    _sweep_retired()


def _try_close(shm: Any) -> bool:
    """Close one shared-memory handle; ``False`` while views persist."""
    try:
        shm.close()
        return True
    except BufferError:
        return False


def _sweep_retired() -> None:
    """Retry closing handles whose views were still alive earlier."""
    global _retired_shms
    _retired_shms = [shm for shm in _retired_shms if not _try_close(shm)]


def _release_entry(entry: _TraceEntry) -> None:
    """Drop an entry's arrays, then close its segments (or retire them).

    An evicted entry's traces may still be referenced by a running
    simulation; closing their backing segment would raise
    :class:`BufferError` from ``__del__`` later, so handles that cannot
    close yet are parked and retried on subsequent evictions.
    """
    entry.traces = []
    _sweep_retired()
    for shm in entry.shms:
        if not _try_close(shm):
            _retired_shms.append(shm)
    entry.shms = []


def _evict(cache: OrderedDict, capacity: int) -> None:
    """Shrink a cache to ``capacity`` entries, oldest first."""
    while len(cache) > capacity:
        _, entry = cache.popitem(last=False)
        if isinstance(entry, _TraceEntry):
            _release_entry(entry)


# ----------------------------------------------------------------------
# cache keys


def _organization_token(organization: Any) -> Tuple:
    """Hashable identity of a DRAM organization (decode geometry)."""
    import dataclasses

    if dataclasses.is_dataclass(organization):
        return tuple(
            sorted(dataclasses.asdict(organization).items())
        )
    return (repr(organization),)


def workload_key(
    workload: Any, params: Any, organization: Any
) -> Optional[str]:
    """Stable plane key of one workload materialization, or ``None``.

    Mirrors the store's fingerprint-free digest ingredients — workload
    identity plus the generation-relevant parameters plus the decode
    organization — and, for file-backed workloads, folds in the PR-5
    ``store_fingerprint()`` (per-file mtime_ns/size) so re-recording a
    trace under the same path invalidates in-process and shared-memory
    caches alike. Returns ``None`` for workload objects the plane does
    not understand (ad-hoc test workloads): those are never cached, so
    unknown generation inputs can never alias.
    """
    import hashlib
    import json

    requests = getattr(params, "requests_per_core", None)
    cores = getattr(params, "num_cores", None)
    if requests is None or cores is None:
        return None
    fingerprint_hook = getattr(workload, "store_fingerprint", None)
    if callable(fingerprint_hook) and callable(
        getattr(workload, "core_files", None)
    ):
        try:
            fingerprint = fingerprint_hook()
        except OSError:
            return None
        ingredients: Tuple = (
            "trace", workload.name, tuple(map(tuple, fingerprint)),
            requests, cores, _organization_token(organization),
        )
    elif isinstance(workload, WorkloadSpec):
        ingredients = (
            "synthetic", workload.name, tuple(workload.components),
            getattr(params, "seed", None), requests, cores,
            _organization_token(organization),
        )
    else:
        return None
    payload = json.dumps(ingredients, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cell_workload_key(cell: Any) -> Optional[str]:
    """The plane key of one ``perf`` grid cell, or ``None``.

    Resolves the cell's workload the same way the engine will (the
    carried ``workload_spec`` object, else the name through the
    workload-source registry) and keys it against the cell's own
    parameters and organization. Non-``perf`` cells, unresolvable
    workloads, and missing trace files all degrade to ``None`` — the
    cell simply runs uncached.
    """
    if getattr(cell, "kind", None) != "perf":
        return None
    workload = getattr(cell, "workload_spec", None)
    if workload is None:
        from repro.workloads.sources import resolve_workload_string

        try:
            workload = resolve_workload_string(str(cell.workload))
        except Exception:
            return None
    params = cell.params
    make_organization = getattr(params, "make_organization", None)
    if not callable(make_organization):
        return None
    return workload_key(workload, params, make_organization())


# ----------------------------------------------------------------------
# trace materialization


def file_columns(file_path: str) -> Tuple:
    """In-process memo over the parsed-trace cache for one file.

    The on-disk ``.npz`` cache (:mod:`repro.workloads.cache`) already
    avoids re-parsing, but loading the entry still costs milliseconds
    per call — and a rate-mode trace directory asks for the same file
    once *per core*. This memo keys on ``(realpath, mtime_ns, size)``
    (the same invalidation stamp the disk cache uses) and holds the
    decoded columns for the life of the process. Disabled with the
    plane.
    """
    from repro.workloads.cache import load_trace_columns

    if not plane_enabled():
        return load_trace_columns(file_path, name=file_path)
    try:
        stat = os.stat(file_path)
        stamp = (os.path.realpath(file_path), stat.st_mtime_ns, stat.st_size)
    except OSError:
        return load_trace_columns(file_path, name=file_path)
    hit = _file_cache.get(stamp)
    if hit is not None:
        _file_cache.move_to_end(stamp)
        return hit
    columns = load_trace_columns(file_path, name=file_path)
    _file_cache[stamp] = columns
    _evict(_file_cache, _capacity(ENV_TRACE_CAPACITY, _DEFAULT_TRACE_CAPACITY))
    return columns


def _materialize(
    workload: Any, params: Any, organization: Any
) -> Tuple[List[ColumnarTrace], List[int]]:
    """Generate per-core traces plus their stream identities.

    The stream identity maps each core to the distinct trace content it
    replays: synthetic cores are all distinct streams, while a
    trace-directory workload assigns file ``core_id % len(files)`` — a
    single-file (rate-mode) recording is decoded *once* and shared
    across every core, bit-identically to decoding it per core.
    """
    cores = params.num_cores
    core_files = getattr(workload, "core_files", None)
    if callable(core_files) and callable(
        getattr(workload, "store_fingerprint", None)
    ):
        files = core_files()
        by_file: Dict[int, ColumnarTrace] = {}
        traces = []
        stream_ids = []
        for core_id in range(cores):
            index = core_id % len(files)
            if index not in by_file:
                by_file[index] = workload.arrays_for_core(
                    core_id, params, organization
                )
            traces.append(by_file[index])
            stream_ids.append(index)
        return traces, stream_ids
    traces = [
        workload.arrays_for_core(core_id, params, organization)
        for core_id in range(cores)
    ]
    return traces, list(range(cores))


def _tag(traces: Sequence[ColumnarTrace], key: str, stream_ids: Sequence[int]) -> None:
    """Stamp each trace with its content identity for the decode cache."""
    for trace, stream in zip(traces, stream_ids):
        trace.plane_token = (key, stream)


def _attach_untracked(name: str) -> Any:
    """Attach one segment without registering it with the resource tracker.

    Attaching normally registers the name with the resource tracker
    (until Python 3.13's ``track=False``); the publishing coordinator
    owns the unlink, and on a forked start method every process shares
    one tracker, so a worker registering (and later unregistering) the
    same name corrupts the shared cache and spews spurious ``KeyError``
    tracebacks at cleanup. Registration is suppressed for the duration
    of the attach instead.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def _skip_shared_memory(name: str, rtype: str) -> None:
        """Drop shared-memory registrations; pass everything else through."""
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach(ref: "ShmWorkloadRef") -> _TraceEntry:
    """Map a published workload read-only; raises when already unlinked."""
    shms = []
    uniques = []
    try:
        for layout in ref.layouts:
            shm = _attach_untracked(layout.name)
            shms.append(shm)
            uniques.append(ColumnarTrace.from_shm(shm, layout))
    except BaseException:
        for shm in shms:
            _try_close(shm) or _retired_shms.append(shm)
        raise
    traces = [uniques[index] for index in ref.stream_ids]
    return _TraceEntry(traces=traces, shms=shms)


def traces_for(workload: Any, params: Any, organization: Any) -> List[ColumnarTrace]:
    """Per-core columnar traces for one cell, through the plane.

    The single materialization path of the simulator: with the plane
    off (or an uncacheable workload) this is exactly the historical
    per-cell ``arrays_for_core`` loop; with it on, the result is served
    from the in-process LRU, an offered shared-memory segment, or a
    fresh (cached) generation — in that order. Returned arrays are
    shared across cells and must be treated as read-only, which every
    engine already honors.
    """
    if not plane_enabled():
        return [
            workload.arrays_for_core(core_id, params, organization)
            for core_id in range(params.num_cores)
        ]
    key = workload_key(workload, params, organization)
    if key is None:
        return [
            workload.arrays_for_core(core_id, params, organization)
            for core_id in range(params.num_cores)
        ]
    entry = _trace_cache.get(key)
    if entry is not None:
        _trace_cache.move_to_end(key)
        _bump("trace_hits")
        return entry.traces
    ref = _offers.get(key)
    if ref is not None:
        try:
            entry = _attach(ref)
        except (FileNotFoundError, OSError, ValueError):
            entry = None
        if entry is not None:
            _tag(entry.traces, key, ref.stream_ids)
            _trace_cache[key] = entry
            _evict(
                _trace_cache,
                _capacity(ENV_TRACE_CAPACITY, _DEFAULT_TRACE_CAPACITY),
            )
            _bump("attached")
            return entry.traces
    traces, stream_ids = _materialize(workload, params, organization)
    _tag(traces, key, stream_ids)
    _trace_cache[key] = _TraceEntry(traces=traces, shms=[])
    _evict(_trace_cache, _capacity(ENV_TRACE_CAPACITY, _DEFAULT_TRACE_CAPACITY))
    _bump("generated")
    return traces


# ----------------------------------------------------------------------
# decoded-list product (batched engine)


def decode_token(trace: Any, core: Any, memory: Any) -> Optional[Tuple]:
    """Cache identity of one decoded trace, or ``None`` (don't cache).

    Only plane-materialized traces carry a content token; the decoded
    product additionally depends on the core's gap arithmetic
    (``fetch_width``, cycle time) and the organization's bank geometry
    — everything :class:`~repro.sim.engine.batched._DecodedTrace`
    reads. Deliberately *not* per-core: rate-mode cores sharing one
    stream share one decode.
    """
    if not plane_enabled():
        return None
    token = getattr(trace, "plane_token", None)
    if token is None:
        return None
    organization = memory.config.organization
    return (
        token,
        core.config.fetch_width,
        core.cycle_ns,
        organization.ranks_per_channel,
        organization.banks_per_rank,
    )


def cached_decode(token: Optional[Tuple], build: Any) -> Any:
    """Return the cached decoded product for ``token``, else build it.

    ``build`` is a zero-argument callable; a ``None`` token always
    builds (uncacheable trace or plane off). Decoded products are
    immutable by engine contract — the fused loop only reads them.
    """
    if token is None:
        return build()
    hit = _decoded_cache.get(token)
    if hit is not None:
        _decoded_cache.move_to_end(token)
        _bump("decode_hits")
        return hit
    value = build()
    _decoded_cache[token] = value
    _evict(
        _decoded_cache,
        _capacity(ENV_DECODED_CAPACITY, _DEFAULT_DECODED_CAPACITY),
    )
    return value


# ----------------------------------------------------------------------
# zero-copy distribution


@dataclass(frozen=True)
class ShmWorkloadRef:
    """Picklable handle to one published workload.

    Attributes:
        key: The :func:`workload_key` the segments were published under.
        layouts: One shared-memory layout per distinct trace stream.
        stream_ids: Core → index into ``layouts`` (rate-mode cores map
            to the same stream).
    """

    key: str
    layouts: Tuple[ShmTraceLayout, ...]
    stream_ids: Tuple[int, ...]


def offer(ref: ShmWorkloadRef) -> None:
    """Register a published workload for this process's :func:`traces_for`."""
    _offers[ref.key] = ref


def _segment_name() -> str:
    """A fresh ``repro-`` prefixed segment name, unique per process."""
    return f"repro-{os.getpid():x}-{next(_segment_seq):x}"


class PlanePublisher:
    """Coordinator-side materialization and shared-memory lifecycle.

    A :class:`~repro.sim.pool.ProcessPool` run creates one publisher,
    :meth:`publish`\\ es the distinct workloads of its pending cells,
    hands each submitted cell its :class:`ShmWorkloadRef` (workers
    attach instead of regenerating), and — on every exit path — calls
    :meth:`close`, which unlinks all segments. Publishing is strictly
    best-effort: a workload that cannot be keyed, materialized, or fit
    under the byte budget is skipped and its cells regenerate in the
    workers, exactly as before the plane existed.
    """

    def __init__(self) -> None:
        self._segments: List[Any] = []
        self.refs: Dict[str, ShmWorkloadRef] = {}

    def publish(self, keyed_cells: Sequence[Tuple[int, Any, Optional[str]]]) -> None:
        """Publish every distinct workload with at least two pending cells.

        ``keyed_cells`` is the run's ``(position, cell, key)`` list (see
        :func:`keyed_pending`). Single-cell workloads are not published:
        the coordinator would pay the generation a worker pays anyway,
        plus a copy. A budget (:data:`ENV_SHM_MB`) bounds total published
        bytes; beyond it workloads fall back to worker-side generation.
        """
        budget = _capacity(ENV_SHM_MB, _DEFAULT_SHM_MB) * 1024 * 1024
        published_bytes = 0
        counts: Dict[str, int] = {}
        sample: Dict[str, Any] = {}
        for _position, cell, key in keyed_cells:
            if key is None:
                continue
            counts[key] = counts.get(key, 0) + 1
            sample.setdefault(key, cell)
        for key, count in counts.items():
            if count < 2 or key in self.refs:
                continue
            try:
                ref, size = self._publish_one(key, sample[key])
            except Exception:
                continue
            if ref is None:
                continue
            published_bytes += size
            self.refs[key] = ref
            if published_bytes >= budget:
                break

    def _publish_one(
        self, key: str, cell: Any
    ) -> Tuple[Optional[ShmWorkloadRef], int]:
        """Materialize one cell's workload and copy it into segments."""
        workload = getattr(cell, "workload_spec", None)
        if workload is None:
            from repro.workloads.sources import resolve_workload_string

            workload = resolve_workload_string(str(cell.workload))
        params = cell.params
        organization = params.make_organization()
        traces = traces_for(workload, params, organization)
        uniques: Dict[int, int] = {}
        layouts: List[ShmTraceLayout] = []
        stream_ids: List[int] = []
        size = 0
        created: List[Any] = []
        try:
            for trace in traces:
                marker = id(trace)
                if marker not in uniques:
                    shm, layout = trace.to_shm(name=_segment_name())
                    created.append(shm)
                    size += shm.size
                    uniques[marker] = len(layouts)
                    layouts.append(layout)
                stream_ids.append(uniques[marker])
        except BaseException:
            for shm in created:
                _try_close(shm)
                try:
                    shm.unlink()
                except (FileNotFoundError, OSError):
                    pass
            raise
        self._segments.extend(created)
        return (
            ShmWorkloadRef(
                key=key, layouts=tuple(layouts), stream_ids=tuple(stream_ids)
            ),
            size,
        )

    def close(self) -> None:
        """Unlink every published segment (idempotent, never raises).

        Runs on success, cell failure, and the interrupt drain path
        alike. Unlinking removes the ``/dev/shm`` name immediately;
        workers that already attached keep their mappings alive until
        their own references die, and a worker that races an attach
        after the unlink falls back to generating.
        """
        for shm in self._segments:
            if not _try_close(shm):
                _retired_shms.append(shm)
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._segments = []
        self.refs = {}


# ----------------------------------------------------------------------
# cache-affine scheduling


def keyed_pending(
    pending: Sequence[Tuple[int, Any]]
) -> List[Tuple[int, Any, Optional[str]]]:
    """Annotate a run's pending cells with their plane keys (once)."""
    return [
        (position, cell, cell_workload_key(cell)) for position, cell in pending
    ]


def _expected_cost(cell: Any) -> float:
    """Relative wall-clock estimate of one cell (scheduling heuristic).

    Demand accesses dominate, scaled up for cells the batched engine
    cannot fuse (explicit scalar engine, or a Hydra-tracked cell under
    ``auto``) and for mitigation cells (swaps add work over baseline).
    Only relative order matters: largest-first within a workload group
    keeps the long pole off the tail of the schedule.
    """
    params = getattr(cell, "params", None)
    requests = getattr(params, "requests_per_core", 0) or 0
    cores = getattr(params, "num_cores", 1) or 1
    cost = float(requests * cores)
    engine = getattr(params, "engine", "")
    tracker = getattr(params, "tracker", "")
    if engine == "scalar" or tracker == "hydra":
        cost *= 3.0
    if getattr(cell, "mitigation", "baseline") != "baseline":
        cost *= 1.5
    return cost


def affinity_order(
    keyed_cells: Sequence[Tuple[int, Any, Optional[str]]]
) -> List[Tuple[int, Any, Optional[str]]]:
    """Submission order for a process pool: grouped, big-first.

    Cells sharing a workload key are submitted consecutively (groups in
    first-appearance plan order, so early plan cells still start early),
    largest expected cost first within each group — workers pulling
    from the shared queue stay on one workload while it is in their
    caches, and a group's longest cell never starts last. Unkeyed cells
    form singleton groups. Plan-order progress reporting is unaffected:
    results are recorded by plan position regardless of completion
    order.
    """
    groups: "OrderedDict[Any, List[Tuple[int, Any, Optional[str]]]]" = OrderedDict()
    for position, cell, key in keyed_cells:
        group = key if key is not None else ("__solo__", position)
        groups.setdefault(group, []).append((position, cell, key))
    ordered: List[Tuple[int, Any, Optional[str]]] = []
    for members in groups.values():
        members.sort(key=lambda item: (-_expected_cost(item[1]), item[0]))
        ordered.extend(members)
    return ordered
