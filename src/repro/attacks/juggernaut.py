"""The Juggernaut attack pattern — live driver and policy analyses.

Three tools live here:

- :class:`JuggernautAttacker` executes the attack pattern of Figure 5
  against a *live* mitigation engine attached to a real :class:`Bank`,
  and checks whether any physical location crossed ``TRH``. This is the
  integration-level proof that RRS is broken and SRS is not, run on
  scaled-down banks so guesses land within test budgets.

- :func:`multi_bank_time_to_break_days` models the Section III-C analysis:
  hammering ``B`` banks concurrently multiplies the per-window success
  odds by ``B`` but dilates the per-bank activation gap to
  ``B * tFAW / 4`` (the channel's ACT throughput limit), which degrades
  the attack by orders of magnitude (4 hours to ~10 years at 16 banks).

- :func:`open_page_time_to_break_days` models Section VIII-3: an
  open-page controller stretches the attacker's effective activation gap,
  shrinking the feasible attack rounds (4 hours to ~10 days at
  ``TRH = 4800``), though the protection evaporates at lower ``TRH``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.attacks.analytical import AttackParameters, JuggernautModel
from repro.core.mitigation import Mitigation


@dataclass
class AttackVerdict:
    """Outcome of driving the attack pattern for one refresh window."""

    target_home_activations: int
    max_location_activations: int
    hottest_location: Optional[int]
    bit_flipped: bool
    demand_activations: int
    rounds_completed: int
    guesses_made: int


class JuggernautAttacker:
    """Drives the two-phase Juggernaut pattern against a mitigation.

    Args:
        mitigation: The engine under attack (owns the bank and tracker).
        trh: Row Hammer threshold to test against.
        ts: The defense's swap threshold (the attacker knows it; Kerckhoffs).
        rng: Randomness for the guess phase.
    """

    def __init__(
        self,
        mitigation: Mitigation,
        trh: int,
        ts: int,
        rng: Optional[random.Random] = None,
    ):
        self.mitigation = mitigation
        self.bank = mitigation.bank
        self.trh = trh
        self.ts = ts
        self.rng = rng or random.Random(0xA77ACC)
        self.demand_activations = 0

    def _hammer(self, time: float, row: int, count: int, deadline: float) -> float:
        """Activate logical ``row`` ``count`` times; returns the new time."""
        for _ in range(count):
            if time >= deadline:
                return time
            physical = self.mitigation.resolve(row)
            if self.mitigation.is_pinned(row):
                # Scale-SRS pinned the row: accesses hit in the LLC and
                # produce no DRAM activations. Hammering it is wasted time.
                time += self.bank.timing.t_rc
                continue
            result = self.bank.access(time, physical)
            self.demand_activations += 1
            time = max(result.finish, self.mitigation.on_activation(result.finish, row))
        return time

    def run_window(
        self,
        target_row: int,
        rounds: int,
        window_start: float = 0.0,
    ) -> AttackVerdict:
        """Execute one window of the attack pattern (Figure 5).

        Phase 1 hammers ``target_row`` in bursts of ``TS`` for ``rounds``
        rounds, milking the defense's mitigative actions for latent
        activations at the target's home location. Phase 2 spends the
        remaining window on random guesses, each hammered ``TS`` times.
        """
        deadline = window_start + self.bank.timing.refresh_window
        time = window_start
        # Initial burst: force the first swap.
        time = self._hammer(time, target_row, 2 * self.ts - 1, deadline)
        completed = 0
        for _ in range(rounds):
            if time >= deadline:
                break
            time = self._hammer(time, target_row, self.ts, deadline)
            completed += 1
        guesses = 0
        while time < deadline:
            guess = self.rng.randrange(self.bank.num_rows)
            if guess == target_row:
                continue
            time = self._hammer(time, guess, self.ts, deadline)
            guesses += 1
        stats = self.bank.stats
        counts = stats.current_counts()
        if counts:
            hottest, hottest_count = max(counts.items(), key=lambda kv: kv[1])
        else:
            hottest, hottest_count = None, 0
        target_home = stats.count(target_row)
        return AttackVerdict(
            target_home_activations=target_home,
            max_location_activations=hottest_count,
            hottest_location=hottest,
            bit_flipped=hottest_count > self.trh,
            demand_activations=self.demand_activations,
            rounds_completed=completed,
            guesses_made=guesses,
        )


def multi_bank_time_to_break_days(
    trh: int,
    swap_rate: float,
    num_banks: int,
    params: Optional[AttackParameters] = None,
    t_faw: float = 35.0,
) -> float:
    """Section III-C: expected days to break RRS hammering ``B`` banks.

    Hammering banks concurrently is bounded by the channel's activate
    throughput (four ACTs per ``tFAW``), so each bank sees an effective
    activation gap of ``max(tRC, B * tFAW / 4)``; success probability per
    window scales by ``B`` (any bank may hit). At ``TRH = 4800`` and a
    swap rate of 6, 16 banks degrade Juggernaut from ~4 hours to ~10
    years (the paper reports 9.9 years).
    """
    if num_banks < 1:
        raise ValueError("num_banks must be at least 1")
    base = params or AttackParameters()
    act_gap = max(base.t_rc, num_banks * t_faw / 4.0)
    per_bank = AttackParameters(
        trh=trh,
        ts=max(1, int(round(trh / swap_rate))),
        rows_per_bank=base.rows_per_bank,
        t_rc=base.t_rc,
        t_rfc=base.t_rfc,
        refreshes_per_window=base.refreshes_per_window,
        t_swap=base.t_swap,
        t_reswap=base.t_reswap,
        latent_per_round=base.latent_per_round,
        refresh_window=base.refresh_window,
        act_gap=act_gap,
    )
    best = JuggernautModel(per_bank).best(step=10)
    if best.success_probability <= 0.0:
        return float("inf")
    combined = min(1.0, best.success_probability * num_banks)
    window_days = per_bank.refresh_window / (86_400.0 * 1e9)
    return window_days / combined


def open_page_time_to_break_days(
    trh: int,
    swap_rate: float,
    act_gap_factor: float = 1.5,
    params: Optional[AttackParameters] = None,
    refresh_window: Optional[float] = None,
) -> float:
    """Section VIII-3: Juggernaut under an open-page memory controller.

    An open-page controller merges consecutive same-row accesses into one
    activation, so the attacker must interleave conflicting rows; the
    effective per-activation gap stretches by ``act_gap_factor``
    (row-conflict latency over row-cycle latency). Passing a halved
    ``refresh_window`` models the DDR5 discussion point (Section VIII-5).

    Note: the time-to-break is cliff-like in the gap factor — at
    ``TRH = 4800`` / swap rate 6 it jumps from under a day (factor
    ~1.4, where ``k = 2`` biasing still fits the window) to tens of days
    (factor 1.5, ``k = 3``). The paper's 10-day figure sits in the latter
    regime; the qualitative conclusions it draws (open-page slows
    Juggernaut at high ``TRH``, but ``TRH <= 3300`` still falls in under
    a day at swap rate 10) hold at the default factor.
    """
    base = params or AttackParameters()
    configured = AttackParameters(
        trh=trh,
        ts=max(1, int(round(trh / swap_rate))),
        rows_per_bank=base.rows_per_bank,
        t_rc=base.t_rc,
        t_rfc=base.t_rfc,
        refreshes_per_window=base.refreshes_per_window,
        t_swap=base.t_swap,
        t_reswap=base.t_reswap,
        latent_per_round=base.latent_per_round,
        refresh_window=refresh_window if refresh_window is not None else base.refresh_window,
        act_gap=base.t_rc * act_gap_factor,
    )
    return JuggernautModel(configured).best(step=10).time_to_break_days
