"""The naive random-guess (birthday-paradox) attack on RRS (Figure 1a).

This is the attack the original RRS paper analysed: the attacker
repeatedly picks random rows, hammers each ``TS`` times (forcing a swap),
and hopes enough of these guesses land on the victim's physical location.
No latent activations are exploited, so the attack needs roughly
``swap rate`` correct guesses and takes years — which is why RRS looked
secure before Juggernaut.

The model is the Juggernaut analytical machinery with zero biasing
rounds and zero latent contribution.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.analytical import AttackParameters, JuggernautModel, srs_parameters


def random_guess_time_to_break_days(
    trh: int,
    swap_rate: float,
    rows_per_bank: int = 128 * 1024,
    params: Optional[AttackParameters] = None,
) -> float:
    """Days for the naive random-guess attack to break a row-swap defense.

    Args:
        trh: Row Hammer threshold.
        swap_rate: ``TRH / TS``.
        rows_per_bank: ``R``.
        params: Optional base parameters to override timing constants.

    Returns:
        Expected days to the first bit flip (``inf`` when infeasible).
    """
    base = params or AttackParameters()
    configured = AttackParameters(
        trh=trh,
        ts=max(1, int(round(trh / swap_rate))),
        rows_per_bank=rows_per_bank,
        t_rc=base.t_rc,
        t_rfc=base.t_rfc,
        refreshes_per_window=base.refreshes_per_window,
        t_swap=base.t_swap,
        t_reswap=base.t_reswap,
        latent_per_round=0.0,
        refresh_window=base.refresh_window,
        act_gap=base.act_gap,
    )
    model = JuggernautModel(srs_parameters(configured))
    return model.evaluate(0).time_to_break_days
