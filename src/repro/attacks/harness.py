"""Security harness: play an access pattern against a defended bank.

Glue for the motivation and security experiments: drives a hammer
pattern (from :mod:`repro.attacks.patterns`) through a mitigation engine
attached to a bank, feeding every demand activation into a
:class:`DisturbanceModel`, then reports whether any victim flipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.mitigation import Mitigation
from repro.dram.disturbance import DisturbanceModel


@dataclass
class HammerOutcome:
    """Result of one hammering session."""

    activations: int
    flipped_rows: List[int]
    hottest_row: int
    hottest_disturbance: float
    victim_refreshes: int
    duration_ns: float

    @property
    def any_flip(self) -> bool:
        return bool(self.flipped_rows)


def hammer_pattern(
    mitigation: Mitigation,
    disturbance: DisturbanceModel,
    pattern: Iterable[int],
    start: float = 0.0,
    deadline: Optional[float] = None,
) -> HammerOutcome:
    """Hammer ``pattern``'s rows in order through ``mitigation``.

    Each access resolves the logical row through the mitigation's
    indirection (identity for VFM, the RIT for row-swap designs), issues
    the bank access, disturbs the physical neighbours, and notifies the
    mitigation. Stops at ``deadline`` if given.
    """
    bank = mitigation.bank
    time = start
    issued = 0
    for row in pattern:
        if deadline is not None and time >= deadline:
            break
        if mitigation.is_pinned(row):
            time += bank.timing.t_rc
            continue
        physical = mitigation.resolve(row)
        result = bank.access(time, physical)
        disturbance.on_activation(physical, result.start)
        issued += 1
        time = max(result.finish, mitigation.on_activation(result.finish, row))
    hottest_row, hottest = disturbance.hottest()
    victim_refreshes = getattr(mitigation, "victim_refreshes", 0)
    return HammerOutcome(
        activations=issued,
        flipped_rows=disturbance.flipped_rows(),
        hottest_row=hottest_row,
        hottest_disturbance=hottest,
        victim_refreshes=victim_refreshes,
        duration_ns=time - start,
    )
