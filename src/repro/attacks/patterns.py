"""Classic Row Hammer access patterns (Section II background).

Generators for the attack patterns the paper's threat model references:

- *single-sided* [24]: hammer one aggressor (plus a far dummy row to
  defeat the row buffer);
- *double-sided* [54]: hammer the two rows sandwiching the victim —
  the pattern that set ``TRH = 4800`` on LPDDR4;
- *many-sided* (TRRespass [15]): several aggressor pairs to overwhelm
  in-DRAM TRR samplers;
- *half-double* (Google [16, 25]): heavy far-aggressor hammering plus
  light near-row accesses so the *mitigation's own refreshes* of the
  near rows hammer a distance-2 victim.

Each generator yields aggressor row numbers in hammer order; the
security harness plays them against a bank + mitigation + disturbance
model.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence


def single_sided(aggressor: int, dummy: int, count: int) -> Iterator[int]:
    """Alternate the aggressor with a far dummy row (row-buffer flush)."""
    if aggressor == dummy:
        raise ValueError("dummy row must differ from the aggressor")
    for i in range(count):
        yield aggressor if i % 2 == 0 else dummy


def double_sided(victim: int, count: int) -> Iterator[int]:
    """Alternate the two rows sandwiching ``victim``."""
    if victim < 1:
        raise ValueError("victim must have two neighbours")
    for i in range(count):
        yield victim - 1 if i % 2 == 0 else victim + 1


def many_sided(victims: Sequence[int], count: int) -> Iterator[int]:
    """TRRespass-style: cycle through the sandwiching pairs of several
    victims."""
    if not victims:
        raise ValueError("need at least one victim")
    aggressors: List[int] = []
    for victim in victims:
        if victim < 1:
            raise ValueError("victims must have two neighbours")
        aggressors.extend((victim - 1, victim + 1))
    cycle = itertools.cycle(aggressors)
    for _ in range(count):
        yield next(cycle)


def half_double(
    far_aggressor: int,
    count: int,
    near_touch_period: int = 2048,
) -> Iterator[int]:
    """The half-double pattern around victim ``far_aggressor + 2``.

    Hammers ``A`` (the far aggressor) heavily so a victim-focused defense
    keeps refreshing ``A +/- 1``; those refreshes are themselves
    activations and hammer ``A +/- 2``. A sparse sprinkling of direct
    accesses to the near row ``A + 1`` (one per ``near_touch_period``)
    keeps it warm, as in Google's demonstration — sparse enough that the
    defense's tracker does not itself start refreshing ``A + 2``.
    """
    if near_touch_period <= 1:
        raise ValueError("near_touch_period must exceed 1")
    for i in range(count):
        if i % near_touch_period == near_touch_period - 1:
            yield far_aggressor + 1
        else:
            yield far_aggressor


def pattern_rows(pattern: Iterable[int]) -> List[int]:
    """Materialise a pattern (testing helper)."""
    return list(pattern)
