"""Analytical model of the Juggernaut attack pattern (Section III-B).

The model answers: given a Row Hammer threshold ``TRH``, a swap threshold
``TS`` and DDR4 timing, how long does an attacker need to flip a bit under
a row-swap defense? Juggernaut has two phases:

1. *Biasing*: ``N`` rounds of forced unswap-swap operations, each donating
   ``L`` latent activations (1.5 on average under RRS) to the aggressor
   row's original physical location (Equation 1).
2. *Random guessing*: the attacker hammers randomly chosen rows ``TS``
   times each, hoping the victim location's current occupant is among
   them; ``k`` correct guesses finish the job (Equation 3).

Under SRS there are no unswap-swaps, so phase 1 buys nothing
(Equation 11) and the attack degenerates to the naive random-guess attack.

All equations below carry the paper's numbering. Times are in
nanoseconds internally; the public API reports days.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

SECONDS_PER_DAY = 86_400.0
NS_PER_DAY = SECONDS_PER_DAY * 1e9


@dataclass(frozen=True)
class AttackParameters:
    """Inputs to the analytical model (Table II plus system constants).

    Attributes:
        trh: Row Hammer threshold (activations per refresh window).
        ts: Swap threshold; ``trh / ts`` is the swap rate.
        rows_per_bank: ``R`` in Equation 8.
        t_rc: Row cycle time (ns).
        t_rfc: Refresh cycle time (ns).
        refreshes_per_window: Refresh commands per window (8192 on DDR4).
        t_swap: Swap latency (ns).
        t_reswap: Unswap-swap latency (ns).
        latent_per_round: ``L`` — latent activations per attack round
            (1.5 under RRS with the swap-buffer optimisation; 0 under SRS).
        refresh_window: Window/epoch length (ns).
        act_gap: Effective time between attacker activations (ns). Equals
            ``t_rc`` under a closed-page controller; larger under an
            open-page controller, which throttles the attack
            (Section VIII-3).
    """

    trh: int = 4800
    ts: int = 800
    rows_per_bank: int = 128 * 1024
    t_rc: float = 45.0
    t_rfc: float = 350.0
    refreshes_per_window: int = 8192
    t_swap: float = 2_700.0
    t_reswap: float = 5_400.0
    latent_per_round: float = 1.5
    refresh_window: float = 64_000_000.0
    act_gap: Optional[float] = None

    @property
    def swap_rate(self) -> float:
        return self.trh / self.ts

    @property
    def effective_act_gap(self) -> float:
        return self.act_gap if self.act_gap is not None else self.t_rc

    def with_swap_rate(self, swap_rate: float) -> "AttackParameters":
        """Same parameters with ``ts`` derived from a new swap rate."""
        return AttackParameters(
            trh=self.trh,
            ts=max(1, int(round(self.trh / swap_rate))),
            rows_per_bank=self.rows_per_bank,
            t_rc=self.t_rc,
            t_rfc=self.t_rfc,
            refreshes_per_window=self.refreshes_per_window,
            t_swap=self.t_swap,
            t_reswap=self.t_reswap,
            latent_per_round=self.latent_per_round,
            refresh_window=self.refresh_window,
            act_gap=self.act_gap,
        )


@dataclass(frozen=True)
class RoundOutcome:
    """Model outputs for one choice of attack rounds ``N``."""

    rounds: int
    aggressor_activations: float  # Eq. 1 (or Eq. 11 when L == 0 and N == 0)
    activations_left: float  # Eq. 2
    required_guesses: int  # k, Eq. 3
    guesses_per_window: float  # G, Eq. 7
    success_probability: float  # p_{k,TS}, Eq. 8
    expected_iterations: float  # Eq. 9
    time_to_break_ns: float  # Eq. 10
    feasible: bool

    @property
    def time_to_break_days(self) -> float:
        return self.time_to_break_ns / NS_PER_DAY

    @property
    def time_to_break_seconds(self) -> float:
        return self.time_to_break_ns / 1e9


def _binomial_pmf_at_least_once(g: float, p: float, k: int) -> float:
    """``P(X == k)`` for ``X ~ Binomial(G, p)`` — Equation 8.

    ``G`` may be fractional (it is a time quotient); the binomial
    coefficient generalises through the gamma function.
    """
    if k < 0 or g < k:
        return 0.0
    if k == 0:
        return (1.0 - p) ** g
    log_comb = (
        math.lgamma(g + 1.0) - math.lgamma(k + 1.0) - math.lgamma(g - k + 1.0)
    )
    log_p = log_comb + k * math.log(p) + (g - k) * math.log1p(-p)
    return math.exp(log_p)


class JuggernautModel:
    """Evaluates Equations 1-10 for RRS (or SRS via ``latent_per_round=0``)."""

    def __init__(self, params: Optional[AttackParameters] = None):
        self.params = params or AttackParameters()
        if self.params.ts <= 0 or self.params.trh <= 0:
            raise ValueError("thresholds must be positive")
        if self.params.ts * 2 > self.params.trh:
            raise ValueError("swap rate below 2 is not meaningful for the model")

    # ------------------------------------------------------------------
    # Equation-by-equation pieces (exposed for tests and the paper's text)

    def usable_time(self) -> float:
        """Equation 4: window time not consumed by refresh."""
        p = self.params
        return p.refresh_window - p.t_rfc * p.refreshes_per_window

    def biasing_time(self, rounds: int) -> float:
        """Equation 5: time to run ``N`` unswap-swap rounds."""
        p = self.params
        return ((p.ts - 1) * p.effective_act_gap + p.t_reswap) * rounds

    def initial_swap_time(self) -> float:
        """Time to force the initial swap: ``2*TS - 1`` activations plus
        the swap latency (part of Equation 6)."""
        p = self.params
        return p.effective_act_gap * (2 * p.ts - 1) + p.t_swap

    def guessing_time(self, rounds: int) -> float:
        """Equation 6: time left for the random-guess phase."""
        return self.usable_time() - self.biasing_time(rounds) - self.initial_swap_time()

    def guesses(self, rounds: int) -> float:
        """Equation 7: number of random guesses that fit in the window."""
        p = self.params
        per_guess = p.effective_act_gap * (p.ts - 1) + p.t_swap
        return max(0.0, self.guessing_time(rounds)) / per_guess

    def aggressor_activations(self, rounds: int) -> float:
        """Equation 1 (Equation 11 when ``latent_per_round == 0``)."""
        p = self.params
        return 2 * p.ts + p.latent_per_round * rounds

    def required_guesses(self, rounds: int) -> int:
        """Equation 3: correct landings still needed after biasing."""
        p = self.params
        left = p.trh - self.aggressor_activations(rounds)
        if left <= 0:
            return 0
        return math.ceil(left / p.ts)

    # ------------------------------------------------------------------
    # end-to-end evaluation

    def evaluate(self, rounds: int) -> RoundOutcome:
        """Full model output for ``N = rounds``."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        p = self.params
        act_aggr = self.aggressor_activations(rounds)
        act_left = p.trh - act_aggr
        k = self.required_guesses(rounds)
        g = self.guesses(rounds)
        feasible = self.guessing_time(rounds) > 0 or k == 0
        if k == 0:
            # Latent activations alone crossed TRH: one window suffices,
            # provided the biasing itself fits in the window.
            feasible = self.biasing_time(rounds) + self.initial_swap_time() <= self.usable_time()
            prob = 1.0 if feasible else 0.0
        else:
            prob = _binomial_pmf_at_least_once(g, 1.0 / p.rows_per_bank, k) if feasible else 0.0
        if prob > 0.0:
            iterations = 1.0 / prob
            time_ns = p.refresh_window * iterations
        else:
            iterations = math.inf
            time_ns = math.inf
        return RoundOutcome(
            rounds=rounds,
            aggressor_activations=act_aggr,
            activations_left=act_left,
            required_guesses=k,
            guesses_per_window=g,
            success_probability=prob,
            expected_iterations=iterations,
            time_to_break_ns=time_ns,
            feasible=feasible,
        )

    def max_rounds(self) -> int:
        """Largest ``N`` whose biasing phase fits into one window."""
        p = self.params
        per_round = (p.ts - 1) * p.effective_act_gap + p.t_reswap
        budget = self.usable_time() - self.initial_swap_time()
        return max(0, int(budget // per_round))

    def sweep(self, rounds: Iterable[int]) -> List[RoundOutcome]:
        return [self.evaluate(n) for n in rounds]

    def best(self, step: int = 1) -> RoundOutcome:
        """The optimal attack: the ``N`` minimising time-to-break.

        The paper picks ``N`` to minimise ``k`` while maximising ``G``
        (Section III-C); an exhaustive scan implements exactly that.
        """
        best_outcome: Optional[RoundOutcome] = None
        for n in range(0, self.max_rounds() + 1, step):
            outcome = self.evaluate(n)
            if best_outcome is None or outcome.time_to_break_ns < best_outcome.time_to_break_ns:
                best_outcome = outcome
        assert best_outcome is not None
        return best_outcome

    def time_to_break_days(self, rounds: Optional[int] = None) -> float:
        """Convenience: days for a given ``N`` (optimal ``N`` if omitted)."""
        outcome = self.best(step=10) if rounds is None else self.evaluate(rounds)
        return outcome.time_to_break_days


def srs_parameters(params: AttackParameters) -> AttackParameters:
    """The same system defended by SRS: no latent activations per round."""
    return AttackParameters(
        trh=params.trh,
        ts=params.ts,
        rows_per_bank=params.rows_per_bank,
        t_rc=params.t_rc,
        t_rfc=params.t_rfc,
        refreshes_per_window=params.refreshes_per_window,
        t_swap=params.t_swap,
        t_reswap=params.t_reswap,
        latent_per_round=0.0,
        refresh_window=params.refresh_window,
        act_gap=params.act_gap,
    )
