"""Poisson model of outlier-row appearance (Section V-B, Figure 13).

Within one refresh window an attacker can force at most
``A = ACT_max / TS`` swaps. Each swap picks a uniformly random target
location among the bank's ``R`` rows, so the number of times any given
location is chosen is ``Binomial(A, 1/R)``. The expected number of
locations chosen exactly ``k`` times is ``R_K = R * p_{k,TS}``
(footnote 4 of the paper), and the probability that ``M`` such locations
appear simultaneously follows a Poisson law:

    P(M rows with k swaps) = exp(-R_K) * R_K^M / M!

The *time to appear* for the event is one window divided by that
probability. At a swap rate of 3 and ``TRH = 4800`` the paper reads off:
three 3-swap outliers only once every ~31 days, four only once every
~64 years — which is why pinning at most a few rows in the LLC suffices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.analytical import NS_PER_DAY, _binomial_pmf_at_least_once


@dataclass(frozen=True)
class OutlierModel:
    """Outlier-appearance statistics for one bank under attack.

    Attributes:
        trh: Row Hammer threshold.
        swap_rate: ``TRH / TS``; Scale-SRS uses 3.
        rows_per_bank: ``R``.
        max_activations: ``ACT_max`` per bank per window.
        refresh_window_ns: Window length.
    """

    trh: int = 4800
    swap_rate: float = 3.0
    rows_per_bank: int = 128 * 1024
    max_activations: int = 1_360_000
    refresh_window_ns: float = 64_000_000.0

    @property
    def ts(self) -> int:
        return max(1, int(round(self.trh / self.swap_rate)))

    @property
    def max_swaps_per_window(self) -> int:
        """``A``: the most rows an attacker can push past ``TS``."""
        return self.max_activations // self.ts

    def probability_row_chosen(self, k: int) -> float:
        """``p_{k,TS}``: one location receiving exactly ``k`` swap landings."""
        return _binomial_pmf_at_least_once(
            float(self.max_swaps_per_window), 1.0 / self.rows_per_bank, k
        )

    def expected_rows_with_swaps(self, k: int) -> float:
        """``R_K``: expected number of locations with exactly ``k`` landings."""
        return self.rows_per_bank * self.probability_row_chosen(k)

    def probability_of_outliers(self, num_rows: int, k: int = 3) -> float:
        """Poisson probability of ``num_rows`` simultaneous k-swap outliers."""
        lam = self.expected_rows_with_swaps(k)
        if lam <= 0.0:
            return 0.0
        log_p = -lam + num_rows * math.log(lam) - math.lgamma(num_rows + 1)
        return math.exp(log_p)

    def time_to_appear_days(self, num_rows: int, k: int = 3) -> float:
        """Expected days until a window shows ``num_rows`` k-swap outliers."""
        prob = self.probability_of_outliers(num_rows, k)
        if prob <= 0.0:
            return math.inf
        return (self.refresh_window_ns / prob) / NS_PER_DAY

    def sweep_swap_rates(
        self, swap_rates: List[float], num_rows: int, k: Optional[int] = None
    ) -> List[float]:
        """Figure 13: time-to-appear across candidate swap rates.

        By default each rate is paired with the outlier class that
        *matters* at that rate: a location needs ``k = swap_rate``
        landings to approach ``TRH``, so the figure compares rate 3 with
        3-swap outliers against rate 6 with 6-swap outliers — which is
        why a higher swap rate looks so much safer. Pass an explicit
        ``k`` to hold the outlier class fixed instead.
        """
        out = []
        for rate in swap_rates:
            model = OutlierModel(
                trh=self.trh,
                swap_rate=rate,
                rows_per_bank=self.rows_per_bank,
                max_activations=self.max_activations,
                refresh_window_ns=self.refresh_window_ns,
            )
            k_eff = k if k is not None else max(1, int(round(rate)))
            out.append(model.time_to_appear_days(num_rows, k_eff))
        return out

    def llc_rows_needed(self, num_banks_attacked: int = 1, outliers_per_bank: int = 3) -> int:
        """Worst-case rows to pin (Section V-C provisioning)."""
        return outliers_per_bank * num_banks_attacked
