"""Attack patterns and security-analysis models.

- :mod:`repro.attacks.analytical` — the Juggernaut analytical model
  (Equations 1-10 of Section III-B) and its SRS variant (Equations 11-12).
- :mod:`repro.attacks.juggernaut` — the attack-pattern driver that runs
  Juggernaut against a live mitigation engine, plus the multi-bank and
  open-page analyses.
- :mod:`repro.attacks.montecarlo` — event-driven Monte-Carlo validation of
  the analytical model (Figure 6's 'Experiment' series).
- :mod:`repro.attacks.birthday` — the naive random-guess (birthday
  paradox) attack used by the original RRS security analysis (Figure 1a).
- :mod:`repro.attacks.outliers` — the Poisson outlier-appearance model
  behind Scale-SRS's reduced swap rate (Figure 13).
"""

from repro.attacks.analytical import (
    AttackParameters,
    JuggernautModel,
    RoundOutcome,
    SECONDS_PER_DAY,
)
from repro.attacks.birthday import random_guess_time_to_break_days
from repro.attacks.montecarlo import (
    MonteCarloJuggernaut,
    MonteCarloResult,
    derive_seed,
)
from repro.attacks.outliers import OutlierModel
from repro.attacks.juggernaut import (
    JuggernautAttacker,
    AttackVerdict,
    multi_bank_time_to_break_days,
)
from repro.attacks.patterns import (
    single_sided,
    double_sided,
    many_sided,
    half_double,
)
from repro.attacks.harness import HammerOutcome, hammer_pattern

__all__ = [
    "AttackParameters",
    "JuggernautModel",
    "RoundOutcome",
    "SECONDS_PER_DAY",
    "random_guess_time_to_break_days",
    "MonteCarloJuggernaut",
    "MonteCarloResult",
    "derive_seed",
    "OutlierModel",
    "JuggernautAttacker",
    "AttackVerdict",
    "multi_bank_time_to_break_days",
    "single_sided",
    "double_sided",
    "many_sided",
    "half_double",
    "HammerOutcome",
    "hammer_pattern",
]
