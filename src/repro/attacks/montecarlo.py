"""Event-driven Monte-Carlo validation of the Juggernaut model.

The paper validates Equations 1-10 with 100,000-iteration Monte-Carlo
simulations (the 'Experiment' markers of Figure 6). This module
reproduces that validation in two stages, mirroring the Bins-and-Buckets
approach of the artifact:

1. *Within-window simulation*: each simulated window plays out the attack
   stochastically — the per-round latent activations are drawn as 1 or 2
   (the swap-buffer optimisation's coin flip, averaging the paper's
   ``L = 1.5``), and the number of correct random guesses is drawn from
   ``Binomial(G, 1/R)``. The window succeeds when the victim location's
   activation count crosses ``TRH``.
2. *Attack-time sampling*: per-iteration attack times are geometric in the
   per-window success probability estimated in stage 1.

Stage 1 is exact event-driven simulation of one window; stage 2 replaces
an (identically distributed) sequence of independent window replays with
a geometric draw, which is what makes 100,000 iterations tractable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Optional

import numpy as np

from repro.attacks.analytical import AttackParameters, JuggernautModel, NS_PER_DAY


def derive_seed(params: AttackParameters, salt: str = "") -> int:
    """A stable 64-bit RNG seed derived from the attack parameters.

    Mirrors the performance path's determinism scheme: every stream is a
    pure function of the run's own parameters (plus an optional caller
    ``salt`` distinguishing otherwise-identical draws, e.g. the design
    name or a grid cell's base seed), digested with SHA-256 — never
    Python's per-process-randomized ``hash()``. Distinct parameter
    points therefore sample independent streams, and reruns of the same
    point reproduce bit-identical results, regardless of how cells are
    scheduled across workers.
    """
    record = tuple(
        (f.name, repr(getattr(params, f.name))) for f in fields(params)
    )
    payload = repr((salt, record)).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


@dataclass
class MonteCarloResult:
    """Summary of a Monte-Carlo run."""

    rounds: int
    iterations: int
    window_success_probability: float
    mean_time_to_break_days: float
    median_time_to_break_days: float
    p05_days: float
    p95_days: float

    @property
    def mean_time_to_break_seconds(self) -> float:
        return self.mean_time_to_break_days * 86_400.0


class MonteCarloJuggernaut:
    """Monte-Carlo simulation of Juggernaut against a swap defense."""

    def __init__(
        self,
        params: Optional[AttackParameters] = None,
        seed: Optional[int] = None,
    ):
        """``seed=None`` (the default) derives the stream from ``params``
        via :func:`derive_seed`, so two simulations of distinct design
        points are automatically independent and each point is
        reproducible on its own — the old fixed-global-seed default made
        parallel sweep cells share one stream. Pass an explicit seed for
        replicate draws of the same point."""
        self.params = params or AttackParameters()
        self.model = JuggernautModel(self.params)
        if seed is None:
            seed = derive_seed(self.params)
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def _simulate_windows(self, rounds: int, num_windows: int) -> np.ndarray:
        """Play ``num_windows`` independent windows; returns success flags."""
        p = self.params
        ts = p.ts
        # Latent activations per round: RRS draws 1 or 2 per unswap-swap
        # (mean 1.5); SRS contributes none.
        if p.latent_per_round > 0 and rounds > 0:
            low = int(np.floor(p.latent_per_round))
            frac = p.latent_per_round - low
            # Sum of `rounds` independent (low + Bernoulli(frac)) draws:
            # a single binomial per window keeps memory flat.
            extra = (
                self.rng.binomial(rounds, frac, size=num_windows)
                if frac > 0
                else np.zeros(num_windows, dtype=np.int64)
            )
            latents = low * rounds + extra
        else:
            latents = np.zeros(num_windows, dtype=np.int64)
        base = 2 * ts + latents  # Eq. 1 with stochastic L
        guesses = self.model.guesses(rounds)
        whole_guesses = int(guesses)
        hits = self.rng.binomial(whole_guesses, 1.0 / p.rows_per_bank, size=num_windows)
        total = base + hits * ts
        return total >= p.trh

    def run(
        self,
        rounds: int,
        iterations: int = 100_000,
        probe_windows: int = 200_000,
        max_expected_iterations: float = 2e6,
    ) -> MonteCarloResult:
        """Estimate the attack-time distribution for ``N = rounds``.

        Args:
            rounds: Attack rounds per window.
            iterations: Independent attack repetitions to sample.
            probe_windows: Windows simulated to estimate the per-window
                success probability; automatically raised when the
                analytical probability is small so the estimate keeps a
                usable number of expected successes.
            max_expected_iterations: When the analytical model predicts an
                expected window count beyond this, the estimator falls back
                to the analytical probability (a direct estimate would need
                an impractically large probe — e.g. the k >= 3 regimes,
                whose per-window success odds are below ~1e-7).
        """
        analytic = self.model.evaluate(rounds)
        p_hat: float
        if not analytic.feasible or analytic.success_probability == 0.0:
            p_hat = 0.0
        elif analytic.expected_iterations > max_expected_iterations:
            p_hat = analytic.success_probability
        else:
            # Aim for >= 200 expected successes in the probe (7% relative
            # error), capped at 5e7 windows.
            needed = int(min(5e7, max(probe_windows, 200 * analytic.expected_iterations)))
            successes = 0
            simulated = 0
            batch = min(needed, 1_000_000)
            while simulated < needed:
                n = min(batch, needed - simulated)
                successes += int(self._simulate_windows(rounds, n).sum())
                simulated += n
            p_hat = successes / simulated if simulated else 0.0

        if p_hat <= 0.0:
            inf = float("inf")
            return MonteCarloResult(
                rounds=rounds,
                iterations=iterations,
                window_success_probability=0.0,
                mean_time_to_break_days=inf,
                median_time_to_break_days=inf,
                p05_days=inf,
                p95_days=inf,
            )

        windows_needed = self.rng.geometric(p_hat, size=iterations)
        times_days = windows_needed * self.params.refresh_window / NS_PER_DAY
        return MonteCarloResult(
            rounds=rounds,
            iterations=iterations,
            window_success_probability=p_hat,
            mean_time_to_break_days=float(times_days.mean()),
            median_time_to_break_days=float(np.median(times_days)),
            p05_days=float(np.percentile(times_days, 5)),
            p95_days=float(np.percentile(times_days, 95)),
        )
