"""Tracker interface and the exact reference tracker."""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.registry import register_tracker


@dataclass(slots=True)
class TrackerObservation:
    """Outcome of one tracked activation.

    Attributes:
        triggered: True when the observed row crossed the swap threshold
            ``TS`` and a mitigation must be issued.
        extra_dram_accesses: Number of additional DRAM accesses the tracker
            itself generated to service this observation (non-zero for
            Hydra's counter-cache misses).
        estimated_count: The tracker's (over-)estimate of the row's
            activation count after this observation.
    """

    triggered: bool
    extra_dram_accesses: int = 0
    estimated_count: int = 0


class Tracker(abc.ABC):
    """Counts activations per row and flags rows crossing ``TS``.

    A tracker instance covers one DRAM bank. Counts never underestimate
    true activation counts (a security requirement: a row must not reach
    ``TS`` activations unnoticed).
    """

    def __init__(self, threshold: int):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.triggers = 0
        self.observations = 0

    @abc.abstractmethod
    def observe(self, row: int) -> TrackerObservation:
        """Record one activation of ``row``."""

    def observe_batch(self, rows) -> None:
        """Record a sequence of activations known not to trigger.

        Semantically identical to calling :meth:`observe` once per row in
        order — same final state, same ``observations`` bookkeeping. The
        batched simulation engine uses it to commit a span's activations
        in one call; callers must have bounded the span length with
        :meth:`batch_horizon` first, so no observation in ``rows`` can
        trigger or generate extra DRAM traffic.
        """
        observe = self.observe
        for row in rows:
            observe(row)

    def batch_horizon(self) -> int:
        """Observations guaranteed free of triggers and DRAM side traffic.

        Returns ``k`` such that the next ``k`` calls to :meth:`observe`
        (on *any* rows) are guaranteed to return ``triggered=False`` with
        ``extra_dram_accesses == 0``. The base implementation returns 0
        (no guarantee — every observation must go through the scalar
        path); trackers whose state admits a cheap bound override it.
        Hydra deliberately does not: any observation may miss its counter
        cache and cost DRAM accesses, so its horizon is always 0.
        """
        return 0

    def row_headroom(self, row: int) -> int:
        """Observations of ``row`` alone guaranteed not to trigger.

        Returns ``k`` such that the next ``k`` observations *of this
        row* return ``triggered=False`` with no DRAM side traffic,
        however they interleave with observations of other rows —
        provided the total number of observations deferred since the
        tracker was last consulted stays within :meth:`batch_slack`.
        This is the per-row rescue the batched engine uses when the
        row-agnostic :meth:`batch_horizon` is exhausted (one hot row
        sitting just below the threshold would otherwise force every
        access to the bank onto the scalar path). The base
        implementation returns 0 (no guarantee).
        """
        return 0

    def batch_slack(self) -> int:
        """Total deferred observations before :meth:`row_headroom`
        guarantees degrade.

        Bounds structural state changes that could invalidate per-row
        headrooms: for Misra-Gries, insertions can fill the table and
        raise the spillover floor (lifting every estimate), so the slack
        is the number of free entries; exact counters are independent
        per row, so their slack is unbounded. The base implementation
        returns 0 (no per-row guarantees at all).
        """
        return 0

    @abc.abstractmethod
    def reset_row(self, row: int) -> None:
        """Clear the count of ``row`` (called after its mitigation)."""

    @abc.abstractmethod
    def end_window(self) -> None:
        """Reset all state at a refresh-window boundary."""

    def _note(self, observation: TrackerObservation) -> TrackerObservation:
        self.observations += 1
        if observation.triggered:
            self.triggers += 1
        return observation


@register_tracker(
    "exact",
    description="idealised per-row counters (ground truth; not buildable)",
    builder=lambda threshold, timing: ExactTracker(threshold),
    supports_batching=True,
)
class ExactTracker(Tracker):
    """Idealised tracker holding one counter per row.

    Not implementable in SRAM at scale; used as ground truth in tests and
    in the security Monte-Carlo simulations, where tracker approximation
    error is not the effect under study.
    """

    def __init__(self, threshold: int):
        super().__init__(threshold)
        self._counts: Dict[int, int] = {}
        # count -> number of rows currently at that (positive) count.
        # Maintained incrementally so `batch_horizon` can report the
        # *current* maximum — which drops back down after a trigger
        # resets the hottest row — instead of a monotone ceiling that
        # would pin the horizon at 0 for the rest of the window.
        self._hist: Dict[int, int] = {}
        # Upper bound on the current maximum count; lowered lazily in
        # `batch_horizon` (total decrements are bounded by total
        # increments, so the walk is O(1) amortized).
        self._max = 0

    def _hist_remove(self, count: int) -> None:
        left = self._hist[count] - 1
        if left:
            self._hist[count] = left
        else:
            del self._hist[count]

    def observe(self, row: int) -> TrackerObservation:
        counts = self._counts
        old = counts.get(row, 0)
        if old:
            self._hist_remove(old)
        count = old + 1
        triggered = count >= self.threshold
        if triggered:
            counts[row] = 0
        else:
            counts[row] = count
            hist = self._hist
            hist[count] = hist.get(count, 0) + 1
            if count > self._max:
                self._max = count
        return self._note(
            TrackerObservation(triggered=triggered, estimated_count=count)
        )

    def observe_batch(self, rows) -> None:
        """Bulk :meth:`observe`, aggregated per row (bit-identical).

        Within a declared horizon no observation can trigger, so the
        final state is order-independent: the batch collapses to one
        count update per *distinct* row (``np.unique`` for long spans, a
        ``Counter`` for short ones). If any row could cross the
        threshold (a caller overran the horizon), the whole batch is
        replayed sequentially through :meth:`observe` so the trigger
        bookkeeping stays exactly the scalar path's.
        """
        if not isinstance(rows, list):
            rows = list(rows)
        if not rows:
            return
        counts = self._counts
        threshold = self.threshold
        if len(rows) >= 64:
            uniques, reps = np.unique(
                np.asarray(rows, dtype=np.int64), return_counts=True
            )
            pairs = list(zip(uniques.tolist(), reps.tolist()))
        else:
            pairs = list(Counter(rows).items())
        if all(counts.get(row, 0) + k < threshold for row, k in pairs):
            hist = self._hist
            maximum = self._max
            for row, k in pairs:
                old = counts.get(row, 0)
                if old:
                    left = hist[old] - 1
                    if left:
                        hist[old] = left
                    else:
                        del hist[old]
                count = old + k
                counts[row] = count
                hist[count] = hist.get(count, 0) + 1
                if count > maximum:
                    maximum = count
            self._max = maximum
            self.observations += len(rows)
            return
        observe = self.observe
        for row in rows:
            observe(row)

    def batch_horizon(self) -> int:
        """``threshold - 1 - max_count``: no count can trigger sooner."""
        maximum = self._max
        hist = self._hist
        while maximum and maximum not in hist:
            maximum -= 1
        self._max = maximum
        return max(0, self.threshold - 1 - maximum)

    def count(self, row: int) -> int:
        return self._counts.get(row, 0)

    def row_headroom(self, row: int) -> int:
        """Per-row counters are independent: exactly the row's margin."""
        return max(0, self.threshold - 1 - self._counts.get(row, 0))

    def batch_slack(self) -> int:
        """Other rows' observations never move this row's count."""
        return 1 << 62

    def reset_row(self, row: int) -> None:
        old = self._counts.pop(row, None)
        if old:
            self._hist_remove(old)

    def end_window(self) -> None:
        self._counts.clear()
        self._hist.clear()
        self._max = 0
