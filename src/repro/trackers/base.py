"""Tracker interface and the exact reference tracker."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict

from repro.registry import register_tracker


@dataclass(slots=True)
class TrackerObservation:
    """Outcome of one tracked activation.

    Attributes:
        triggered: True when the observed row crossed the swap threshold
            ``TS`` and a mitigation must be issued.
        extra_dram_accesses: Number of additional DRAM accesses the tracker
            itself generated to service this observation (non-zero for
            Hydra's counter-cache misses).
        estimated_count: The tracker's (over-)estimate of the row's
            activation count after this observation.
    """

    triggered: bool
    extra_dram_accesses: int = 0
    estimated_count: int = 0


class Tracker(abc.ABC):
    """Counts activations per row and flags rows crossing ``TS``.

    A tracker instance covers one DRAM bank. Counts never underestimate
    true activation counts (a security requirement: a row must not reach
    ``TS`` activations unnoticed).
    """

    def __init__(self, threshold: int):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.triggers = 0
        self.observations = 0

    @abc.abstractmethod
    def observe(self, row: int) -> TrackerObservation:
        """Record one activation of ``row``."""

    @abc.abstractmethod
    def reset_row(self, row: int) -> None:
        """Clear the count of ``row`` (called after its mitigation)."""

    @abc.abstractmethod
    def end_window(self) -> None:
        """Reset all state at a refresh-window boundary."""

    def _note(self, observation: TrackerObservation) -> TrackerObservation:
        self.observations += 1
        if observation.triggered:
            self.triggers += 1
        return observation


@register_tracker(
    "exact",
    description="idealised per-row counters (ground truth; not buildable)",
    builder=lambda threshold, timing: ExactTracker(threshold),
)
class ExactTracker(Tracker):
    """Idealised tracker holding one counter per row.

    Not implementable in SRAM at scale; used as ground truth in tests and
    in the security Monte-Carlo simulations, where tracker approximation
    error is not the effect under study.
    """

    def __init__(self, threshold: int):
        super().__init__(threshold)
        self._counts: Dict[int, int] = {}

    def observe(self, row: int) -> TrackerObservation:
        count = self._counts.get(row, 0) + 1
        triggered = count >= self.threshold
        if triggered:
            self._counts[row] = 0
        else:
            self._counts[row] = count
        return self._note(
            TrackerObservation(triggered=triggered, estimated_count=count)
        )

    def count(self, row: int) -> int:
        return self._counts.get(row, 0)

    def reset_row(self, row: int) -> None:
        self._counts.pop(row, None)

    def end_window(self) -> None:
        self._counts.clear()
