"""Tracker interface and the exact reference tracker."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict

from repro.registry import register_tracker


@dataclass(slots=True)
class TrackerObservation:
    """Outcome of one tracked activation.

    Attributes:
        triggered: True when the observed row crossed the swap threshold
            ``TS`` and a mitigation must be issued.
        extra_dram_accesses: Number of additional DRAM accesses the tracker
            itself generated to service this observation (non-zero for
            Hydra's counter-cache misses).
        estimated_count: The tracker's (over-)estimate of the row's
            activation count after this observation.
    """

    triggered: bool
    extra_dram_accesses: int = 0
    estimated_count: int = 0


class Tracker(abc.ABC):
    """Counts activations per row and flags rows crossing ``TS``.

    A tracker instance covers one DRAM bank. Counts never underestimate
    true activation counts (a security requirement: a row must not reach
    ``TS`` activations unnoticed).
    """

    def __init__(self, threshold: int):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.triggers = 0
        self.observations = 0

    @abc.abstractmethod
    def observe(self, row: int) -> TrackerObservation:
        """Record one activation of ``row``."""

    def observe_batch(self, rows) -> None:
        """Record a sequence of activations known not to trigger.

        Semantically identical to calling :meth:`observe` once per row in
        order — same final state, same ``observations`` bookkeeping. The
        batched simulation engine uses it to commit a span's activations
        in one call; callers must have bounded the span length with
        :meth:`batch_horizon` first, so no observation in ``rows`` can
        trigger or generate extra DRAM traffic.
        """
        observe = self.observe
        for row in rows:
            observe(row)

    def batch_horizon(self) -> int:
        """Observations guaranteed free of triggers and DRAM side traffic.

        Returns ``k`` such that the next ``k`` calls to :meth:`observe`
        (on *any* rows) are guaranteed to return ``triggered=False`` with
        ``extra_dram_accesses == 0``. The base implementation returns 0
        (no guarantee — every observation must go through the scalar
        path); trackers whose state admits a cheap bound override it.
        Hydra deliberately does not: any observation may miss its counter
        cache and cost DRAM accesses, so its horizon is always 0.
        """
        return 0

    @abc.abstractmethod
    def reset_row(self, row: int) -> None:
        """Clear the count of ``row`` (called after its mitigation)."""

    @abc.abstractmethod
    def end_window(self) -> None:
        """Reset all state at a refresh-window boundary."""

    def _note(self, observation: TrackerObservation) -> TrackerObservation:
        self.observations += 1
        if observation.triggered:
            self.triggers += 1
        return observation


@register_tracker(
    "exact",
    description="idealised per-row counters (ground truth; not buildable)",
    builder=lambda threshold, timing: ExactTracker(threshold),
    supports_batching=True,
)
class ExactTracker(Tracker):
    """Idealised tracker holding one counter per row.

    Not implementable in SRAM at scale; used as ground truth in tests and
    in the security Monte-Carlo simulations, where tracker approximation
    error is not the effect under study.
    """

    def __init__(self, threshold: int):
        super().__init__(threshold)
        self._counts: Dict[int, int] = {}
        # Monotone (within a window) upper bound on every live count;
        # deliberately not lowered by reset_row so batch_horizon stays a
        # conservative O(1) computation.
        self._ceiling = 0

    def observe(self, row: int) -> TrackerObservation:
        count = self._counts.get(row, 0) + 1
        if count > self._ceiling:
            self._ceiling = count
        triggered = count >= self.threshold
        if triggered:
            self._counts[row] = 0
        else:
            self._counts[row] = count
        return self._note(
            TrackerObservation(triggered=triggered, estimated_count=count)
        )

    def observe_batch(self, rows) -> None:
        """Bulk :meth:`observe` with hoisted state (bit-identical).

        Any row that would trigger (a caller overran the horizon) is
        delegated to :meth:`observe` so the trigger bookkeeping stays
        exactly the scalar path's.
        """
        counts = self._counts
        threshold = self.threshold
        ceiling = self._ceiling
        seen = 0
        for row in rows:
            count = counts.get(row, 0) + 1
            if count >= threshold:
                self.observations += seen
                self._ceiling = ceiling
                seen = 0
                self.observe(row)
                ceiling = self._ceiling
                continue
            counts[row] = count
            if count > ceiling:
                ceiling = count
            seen += 1
        self.observations += seen
        self._ceiling = ceiling

    def batch_horizon(self) -> int:
        """``threshold - 1 - ceiling``: no count can trigger that soon."""
        return max(0, self.threshold - 1 - self._ceiling)

    def count(self, row: int) -> int:
        return self._counts.get(row, 0)

    def reset_row(self, row: int) -> None:
        self._counts.pop(row, None)

    def end_window(self) -> None:
        self._counts.clear()
        self._ceiling = 0
