"""Hydra hybrid tracker (Qureshi et al., ISCA 2022).

Hydra keeps a small SRAM Group Count Table (GCT): one counter per group of
consecutive rows. While a group's aggregate count stays below the group
threshold, no per-row state exists. When the group threshold is crossed,
per-row counters for the group are initialised *in DRAM* (Row Count Table,
RCT) and subsequently accessed through an SRAM Row Count Cache (RCC). An
RCC miss costs a DRAM read (and a writeback of the evicted dirty entry),
which is the source of Hydra's extra memory traffic at low thresholds —
the effect Figure 16 of the paper measures.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.registry import register_tracker
from repro.trackers.base import Tracker, TrackerObservation


@dataclass(frozen=True)
class HydraConfig:
    """Hydra structure parameters.

    Attributes:
        rows_per_group: Rows aggregated per GCT counter.
        group_threshold_fraction: The group counter value (as a fraction of
            the row threshold) at which per-row tracking starts. Hydra uses
            a fraction below 1 so that no row can reach the row threshold
            while hidden inside a group counter.
        rcc_entries: Row Count Cache capacity (per bank, entries).
        group_threshold_floor: Lower bound on the group threshold. The
            group threshold is a *spatial* quantity (accesses a 128-row
            neighbourhood absorbs before per-row tracking starts), so
            time-scaled simulations must not scale it to nothing; the
            floor keeps the transition realistic at scaled thresholds.
    """

    rows_per_group: int = 128
    group_threshold_fraction: float = 0.5
    rcc_entries: int = 2048
    group_threshold_floor: int = 64


@register_tracker(
    "hydra",
    description="Hydra group/row hybrid with a DRAM-backed counter cache",
    builder=lambda threshold, timing: HydraTracker(threshold, HydraConfig()),
)
class HydraTracker(Tracker):
    """Two-level group/row tracker with a counter cache.

    The over-estimate property holds: per-row counters are initialised to
    the group threshold when a group transitions to per-row mode, so a
    row's estimate is always at least its true count.

    Hydra inherits the default ``batch_horizon() == 0``: any observation
    may miss the RCC and generate DRAM counter traffic, so no span of
    observations is ever side-effect free and the batched simulation
    engine services Hydra-tracked banks access by access.
    """

    def __init__(self, threshold: int, config: Optional[HydraConfig] = None):
        super().__init__(threshold)
        self.config = config or HydraConfig()
        if not 0 < self.config.group_threshold_fraction <= 1:
            raise ValueError("group_threshold_fraction must be in (0, 1]")
        self.group_threshold = max(
            self.config.group_threshold_floor,
            int(threshold * self.config.group_threshold_fraction),
        )
        self._group_counts: Dict[int, int] = {}
        self._hot_groups: Set[int] = set()
        # Row counters for rows in hot groups live in DRAM; the RCC caches
        # them. `_row_counts` is the DRAM-resident truth.
        self._row_counts: Dict[int, int] = {}
        self._rcc: "OrderedDict[int, int]" = OrderedDict()
        self.rcc_hits = 0
        self.rcc_misses = 0
        self.dram_counter_accesses = 0

    def _group_of(self, row: int) -> int:
        return row // self.config.rows_per_group

    def _rcc_access(self, row: int) -> int:
        """Access ``row``'s counter through the RCC; returns DRAM accesses."""
        if row in self._rcc:
            self.rcc_hits += 1
            self._rcc.move_to_end(row)
            return 0
        self.rcc_misses += 1
        extra = 1  # read the counter from DRAM
        if len(self._rcc) >= self.config.rcc_entries:
            evicted_row, _ = self._rcc.popitem(last=False)
            extra += 1  # write back the dirty evicted counter
            del evicted_row
        self._rcc[row] = self._row_counts.get(row, 0)
        self.dram_counter_accesses += extra
        return extra

    def observe(self, row: int) -> TrackerObservation:
        group = self._group_of(row)
        if group not in self._hot_groups:
            count = self._group_counts.get(group, 0) + 1
            self._group_counts[group] = count
            if count >= self.group_threshold:
                # Transition: per-row counters initialised (lazily) to the
                # group threshold — a safe over-estimate for each row.
                self._hot_groups.add(group)
            return self._note(
                TrackerObservation(triggered=False, estimated_count=count)
            )

        extra = self._rcc_access(row)
        count = self._row_counts.get(row, self.group_threshold) + 1
        self._row_counts[row] = count
        self._rcc[row] = count
        triggered = count >= self.threshold
        if triggered:
            self._row_counts[row] = 0
            self._rcc[row] = 0
        return self._note(
            TrackerObservation(
                triggered=triggered,
                extra_dram_accesses=extra,
                estimated_count=count,
            )
        )

    def count(self, row: int) -> int:
        group = self._group_of(row)
        if group in self._hot_groups:
            return self._row_counts.get(row, self.group_threshold)
        return self._group_counts.get(group, 0)

    def reset_row(self, row: int) -> None:
        if self._group_of(row) in self._hot_groups:
            self._row_counts[row] = 0
            if row in self._rcc:
                self._rcc[row] = 0

    def end_window(self) -> None:
        self._group_counts.clear()
        self._hot_groups.clear()
        self._row_counts.clear()
        self._rcc.clear()

    @property
    def rcc_hit_rate(self) -> float:
        total = self.rcc_hits + self.rcc_misses
        return self.rcc_hits / total if total else 0.0
