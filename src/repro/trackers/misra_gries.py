"""Misra-Gries frequent-items tracker (as used by Graphene and RRS).

The Misra-Gries summary guarantees that any row receiving at least ``TS``
activations within the window is flagged, using only
``ceil(ACT_max / TS)`` counters plus one shared spillover counter.

Algorithm (Graphene's lazy-decrement formulation):

- A tracked row's counter increments on each activation.
- An untracked row takes a free entry if one exists, starting at
  ``spillover + 1`` (it may have been evicted before with up to
  ``spillover`` activations — counts over-estimate, never under-estimate).
- With the table full, an untracked row replaces an entry whose count is
  at the ``spillover`` floor; if no entry is at the floor, the *spillover
  counter itself* increments (the lazy equivalent of Misra-Gries'
  decrement-all step) and the arrival is absorbed.

The last rule is what bounds ``spillover <= total_activations / entries``:
each spillover increment consumes ``entries`` worth of accumulated count.
Sized at ``entries = ACT_max / TS``, the spillover can only approach
``TS`` when a bank sustains its maximum activation rate for a full window
(which is why GUPS-like uniform traffic eventually forces swaps, exactly
as the paper observes).

A count-bucket index makes every operation O(1); the floor lookup never
scans the table.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.registry import register_tracker
from repro.trackers.base import Tracker, TrackerObservation


@register_tracker(
    "misra-gries",
    description="Misra-Gries summary sized from ACT_max/TS (Graphene, RRS)",
    builder=lambda threshold, timing: MisraGriesTracker(
        threshold,
        max(
            4,
            MisraGriesTracker.required_entries(
                timing.max_activations_per_window, threshold
            ),
        ),
    ),
    supports_batching=True,
)
class MisraGriesTracker(Tracker):
    """Misra-Gries summary with a spillover counter.

    Args:
        threshold: The swap threshold ``TS``.
        num_entries: Number of (row, count) entries. Secure provisioning
            requires ``num_entries >= ACT_max / TS``; use
            :meth:`required_entries` to size it.
    """

    def __init__(self, threshold: int, num_entries: int):
        super().__init__(threshold)
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self._counts: Dict[int, int] = {}
        self.spillover = 0
        # Rows whose count is <= spillover (replacement candidates).
        self._floor_pool: Set[int] = set()
        # count -> rows at that count (only counts > spillover are kept).
        self._rows_at_count: Dict[int, Set[int]] = {}
        self.spillover_increments = 0
        # Monotone (within a window) upper bound on every estimate the
        # summary can produce; every observe raises it by at most one, so
        # `threshold - 1 - ceiling` observations can never trigger.
        self._ceiling = 0

    @staticmethod
    def required_entries(max_activations: int, threshold: int) -> int:
        """Entries needed so no row reaches ``threshold`` untracked."""
        return -(-max_activations // threshold)

    # ------------------------------------------------------------------
    # bucket index maintenance

    def _bucket_add(self, row: int, count: int) -> None:
        if count <= self.spillover:
            self._floor_pool.add(row)
        else:
            self._rows_at_count.setdefault(count, set()).add(row)

    def _bucket_remove(self, row: int, count: int) -> None:
        if row in self._floor_pool:
            self._floor_pool.discard(row)
            return
        bucket = self._rows_at_count.get(count)
        if bucket is not None:
            bucket.discard(row)
            if not bucket:
                del self._rows_at_count[count]

    def _raise_spillover(self) -> None:
        """The lazy decrement-all step: floor rises by one."""
        self.spillover += 1
        self.spillover_increments += 1
        newly_at_floor = self._rows_at_count.pop(self.spillover, None)
        if newly_at_floor:
            self._floor_pool |= newly_at_floor

    # ------------------------------------------------------------------
    # tracker interface

    def observe(self, row: int) -> TrackerObservation:
        counts = self._counts
        if row in counts:
            old = counts[row]
            self._bucket_remove(row, old)
            count = old + 1
            counts[row] = count
            self._bucket_add(row, count)
        elif len(counts) < self.num_entries:
            count = self.spillover + 1
            counts[row] = count
            self._bucket_add(row, count)
        elif self._floor_pool:
            victim = self._floor_pool.pop()
            del counts[victim]
            count = self.spillover + 1
            counts[row] = count
            self._bucket_add(row, count)
        else:
            # No entry at the floor: absorb the arrival into the spillover
            # counter (Misra-Gries decrement-all).
            self._raise_spillover()
            count = self.spillover
        if count > self._ceiling:
            self._ceiling = count
        triggered = count >= self.threshold
        if triggered and row in counts:
            self._bucket_remove(row, counts[row])
            counts[row] = 0
            self._floor_pool.add(row)
        return self._note(
            TrackerObservation(triggered=triggered, estimated_count=count)
        )

    def count(self, row: int) -> int:
        """Current over-estimate for ``row``."""
        return self._counts.get(row, self.spillover)

    def reset_row(self, row: int) -> None:
        if row in self._counts:
            self._bucket_remove(row, self._counts[row])
            self._counts[row] = 0
            self._floor_pool.add(row)

    def batch_horizon(self) -> int:
        """``threshold - 1 - ceiling`` observations cannot trigger.

        The ceiling upper-bounds every estimate the summary can produce
        (tracked counts, fresh insertions at ``spillover + 1``, and the
        spillover itself), and one observation raises any of those by at
        most one.
        """
        return max(0, self.threshold - 1 - max(self._ceiling, self.spillover + 1))

    def end_window(self) -> None:
        self._counts.clear()
        self._floor_pool.clear()
        self._rows_at_count.clear()
        self.spillover = 0
        self._ceiling = 0

    @property
    def occupancy(self) -> float:
        return len(self._counts) / self.num_entries

    def check_invariants(self) -> None:
        """Structural consistency of the bucket index (tests)."""
        indexed = set(self._floor_pool)
        for count, rows in self._rows_at_count.items():
            assert count > self.spillover, "bucket below spillover floor"
            for row in rows:
                assert self._counts.get(row) == count, f"bucket desync for {row}"
                indexed.add(row)
        for row, count in self._counts.items():
            assert row in indexed, f"row {row} missing from index"
            if row in self._floor_pool:
                assert count <= self.spillover, f"floor row {row} above floor"
