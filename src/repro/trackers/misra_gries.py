"""Misra-Gries frequent-items tracker (as used by Graphene and RRS).

The Misra-Gries summary guarantees that any row receiving at least ``TS``
activations within the window is flagged, using only
``ceil(ACT_max / TS)`` counters plus one shared spillover counter.

Algorithm (Graphene's lazy-decrement formulation):

- A tracked row's counter increments on each activation.
- An untracked row takes a free entry if one exists, starting at
  ``spillover + 1`` (it may have been evicted before with up to
  ``spillover`` activations — counts over-estimate, never under-estimate).
- With the table full, an untracked row replaces an entry whose count is
  at the ``spillover`` floor; if no entry is at the floor, the *spillover
  counter itself* increments (the lazy equivalent of Misra-Gries'
  decrement-all step) and the arrival is absorbed.

The last rule is what bounds ``spillover <= total_activations / entries``:
each spillover increment consumes ``entries`` worth of accumulated count.
Sized at ``entries = ACT_max / TS``, the spillover can only approach
``TS`` when a bank sustains its maximum activation rate for a full window
(which is why GUPS-like uniform traffic eventually forces swaps, exactly
as the paper observes).

A count-bucket index makes every operation O(1); the floor lookup never
scans the table.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.registry import register_tracker
from repro.trackers.base import Tracker, TrackerObservation


@register_tracker(
    "misra-gries",
    description="Misra-Gries summary sized from ACT_max/TS (Graphene, RRS)",
    builder=lambda threshold, timing: MisraGriesTracker(
        threshold,
        max(
            4,
            MisraGriesTracker.required_entries(
                timing.max_activations_per_window, threshold
            ),
        ),
    ),
    supports_batching=True,
)
class MisraGriesTracker(Tracker):
    """Misra-Gries summary with a spillover counter.

    Args:
        threshold: The swap threshold ``TS``.
        num_entries: Number of (row, count) entries. Secure provisioning
            requires ``num_entries >= ACT_max / TS``; use
            :meth:`required_entries` to size it.
    """

    def __init__(self, threshold: int, num_entries: int):
        super().__init__(threshold)
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self._counts: Dict[int, int] = {}
        self.spillover = 0
        # Rows whose count is <= spillover (replacement candidates).
        self._floor_pool: Set[int] = set()
        # count -> rows at that count (only counts > spillover are kept).
        self._rows_at_count: Dict[int, Set[int]] = {}
        self.spillover_increments = 0

    @staticmethod
    def required_entries(max_activations: int, threshold: int) -> int:
        """Entries needed so no row reaches ``threshold`` untracked."""
        return -(-max_activations // threshold)

    # ------------------------------------------------------------------
    # bucket index maintenance

    def _bucket_add(self, row: int, count: int) -> None:
        if count <= self.spillover:
            self._floor_pool.add(row)
        else:
            self._rows_at_count.setdefault(count, set()).add(row)

    def _bucket_remove(self, row: int, count: int) -> None:
        if row in self._floor_pool:
            self._floor_pool.discard(row)
            return
        bucket = self._rows_at_count.get(count)
        if bucket is not None:
            bucket.discard(row)
            if not bucket:
                del self._rows_at_count[count]

    def _raise_spillover(self) -> None:
        """The lazy decrement-all step: floor rises by one."""
        self.spillover += 1
        self.spillover_increments += 1
        newly_at_floor = self._rows_at_count.pop(self.spillover, None)
        if newly_at_floor:
            self._floor_pool |= newly_at_floor

    # ------------------------------------------------------------------
    # tracker interface

    def observe(self, row: int) -> TrackerObservation:
        counts = self._counts
        if row in counts:
            old = counts[row]
            self._bucket_remove(row, old)
            count = old + 1
            counts[row] = count
            self._bucket_add(row, count)
        elif len(counts) < self.num_entries:
            count = self.spillover + 1
            counts[row] = count
            self._bucket_add(row, count)
        elif self._floor_pool:
            victim = self._floor_pool.pop()
            del counts[victim]
            count = self.spillover + 1
            counts[row] = count
            self._bucket_add(row, count)
        else:
            # No entry at the floor: absorb the arrival into the spillover
            # counter (Misra-Gries decrement-all).
            self._raise_spillover()
            count = self.spillover
        triggered = count >= self.threshold
        if triggered and row in counts:
            self._bucket_remove(row, counts[row])
            counts[row] = 0
            self._floor_pool.add(row)
        return self._note(
            TrackerObservation(triggered=triggered, estimated_count=count)
        )

    def count(self, row: int) -> int:
        """Current over-estimate for ``row``."""
        return self._counts.get(row, self.spillover)

    def reset_row(self, row: int) -> None:
        if row in self._counts:
            self._bucket_remove(row, self._counts[row])
            self._counts[row] = 0
            self._floor_pool.add(row)

    def observe_batch(self, rows) -> None:
        """Bulk :meth:`observe` with the bucket index ops inlined.

        Bit-identical to calling :meth:`observe` per row: the same dict
        and set operations run in the same order (including floor-pool
        ``pop`` victim selection), only the method-call and bookkeeping
        overhead is hoisted. The batched simulation engine commits every
        fused span's activations through here, so the per-row cost is
        hot-path cost. Rows that could trigger (a caller overran the
        horizon) are delegated to :meth:`observe` so trigger bookkeeping
        stays exactly the scalar path's.
        """
        counts = self._counts
        threshold = self.threshold
        num_entries = self.num_entries
        floor_pool = self._floor_pool
        rows_at = self._rows_at_count
        spillover = self.spillover
        seen = 0
        for row in rows:
            old = counts.get(row)
            if old is not None:
                count = old + 1
                if count >= threshold:
                    self.observations += seen
                    seen = 0
                    self.observe(row)
                    spillover = self.spillover
                    continue
                # _bucket_remove(row, old), inlined.
                if row in floor_pool:
                    floor_pool.discard(row)
                else:
                    bucket = rows_at.get(old)
                    bucket.discard(row)
                    if not bucket:
                        del rows_at[old]
                counts[row] = count
            else:
                if spillover + 1 >= threshold:
                    self.observations += seen
                    seen = 0
                    self.observe(row)
                    spillover = self.spillover
                    continue
                if len(counts) < num_entries:
                    count = spillover + 1
                elif floor_pool:
                    victim = floor_pool.pop()
                    del counts[victim]
                    count = spillover + 1
                else:
                    # _raise_spillover, inlined (estimate = new spillover,
                    # below threshold per the guard above; no bucket entry).
                    spillover += 1
                    self.spillover = spillover
                    self.spillover_increments += 1
                    newly_at_floor = rows_at.pop(spillover, None)
                    if newly_at_floor:
                        floor_pool |= newly_at_floor
                    seen += 1
                    continue
                counts[row] = count
            # _bucket_add(row, count), inlined.
            if count <= spillover:
                floor_pool.add(row)
            else:
                bucket = rows_at.get(count)
                if bucket is None:
                    rows_at[count] = {row}
                else:
                    bucket.add(row)
            seen += 1
        self.observations += seen

    def batch_horizon(self) -> int:
        """``threshold - 1 - M`` observations cannot trigger, where ``M``
        upper-bounds every estimate the summary can currently produce.

        ``M = max(highest occupied bucket, spillover + 1)``: a tracked
        increment yields at most ``bucket_max + 1`` (floor-pool rows sit
        at or below the spillover), an insertion or eviction-replacement
        yields ``spillover + 1``, and a spillover raise yields the new
        spillover — each observation also raises ``M`` itself by at most
        one, so the bound telescopes across the whole horizon. Unlike a
        monotone ceiling, ``M`` *drops* when a trigger resets the
        hottest row (its bucket empties), so swap designs regain a
        positive horizon right after each swap instead of losing the
        fast path for the rest of the window. The bucket index holds at
        most ``threshold`` distinct counts, so the max is O(TS).
        """
        top = self.spillover + 1
        if self._rows_at_count:
            bucket_max = max(self._rows_at_count)
            if bucket_max > top:
                top = bucket_max
        return max(0, self.threshold - 1 - top)

    def row_headroom(self, row: int) -> int:
        """Observations of ``row`` alone that cannot trigger.

        A row's estimate basis is its tracked count, or the spillover
        when untracked — and eviction can only *reset* a tracked row to
        the untracked basis, so ``max(count, spillover)`` covers both
        fates. Each observation of the row then raises its estimate by
        exactly one as long as the spillover floor itself does not move,
        which :meth:`batch_slack` guarantees (the floor rises only when
        the table is full with no entry at the floor).
        """
        basis = self._counts.get(row, self.spillover)
        if basis < self.spillover:
            basis = self.spillover
        return max(0, self.threshold - 1 - basis)

    def batch_slack(self) -> int:
        """Observations before a spillover raise becomes possible.

        A raise needs a full table with an empty floor pool; every
        observation consumes at most one unit of that distance (an
        insertion takes a free entry or pops a floor victim, an
        increment can lift a row off the floor), so ``free entries +
        floor-pool size`` bounds the safe budget.
        """
        return self.num_entries - len(self._counts) + len(self._floor_pool)

    def end_window(self) -> None:
        self._counts.clear()
        self._floor_pool.clear()
        self._rows_at_count.clear()
        self.spillover = 0

    @property
    def occupancy(self) -> float:
        return len(self._counts) / self.num_entries

    def check_invariants(self) -> None:
        """Structural consistency of the bucket index (tests)."""
        indexed = set(self._floor_pool)
        for count, rows in self._rows_at_count.items():
            assert count > self.spillover, "bucket below spillover floor"
            for row in rows:
                assert self._counts.get(row) == count, f"bucket desync for {row}"
                indexed.add(row)
        for row, count in self._counts.items():
            assert row in indexed, f"row {row} missing from index"
            if row in self._floor_pool:
                assert count <= self.spillover, f"floor row {row} above floor"
