"""Aggressor-row trackers.

Trackers count row activations within a refresh window and signal the
mitigation engine when a row crosses the swap threshold ``TS``. The paper
evaluates its mitigations with the Misra-Gries tracker (as used by RRS and
Graphene) and with Hydra; an exact per-row tracker is provided as a
validation reference.
"""

from repro.trackers.base import Tracker, TrackerObservation, ExactTracker
from repro.trackers.misra_gries import MisraGriesTracker
from repro.trackers.hydra import HydraTracker, HydraConfig

__all__ = [
    "Tracker",
    "TrackerObservation",
    "ExactTracker",
    "MisraGriesTracker",
    "HydraTracker",
    "HydraConfig",
]
