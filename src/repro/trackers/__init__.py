"""Aggressor-row trackers.

Trackers count row activations within a refresh window and signal the
mitigation engine when a row crosses the swap threshold ``TS``. The paper
evaluates its mitigations with the Misra-Gries tracker (as used by RRS and
Graphene) and with Hydra; an exact per-row tracker is provided as a
validation reference.

Trackers self-register with :func:`repro.registry.register_tracker`;
importing this package populates the registry that sizes and builds
per-bank trackers for the simulator and the CLI.
"""

from repro.registry import TRACKERS, register_tracker
from repro.trackers.base import Tracker, TrackerObservation, ExactTracker
from repro.trackers.misra_gries import MisraGriesTracker
from repro.trackers.hydra import HydraTracker, HydraConfig

__all__ = [
    "TRACKERS",
    "register_tracker",
    "Tracker",
    "TrackerObservation",
    "ExactTracker",
    "MisraGriesTracker",
    "HydraTracker",
    "HydraConfig",
]
