#!/usr/bin/env python
"""Hot-path benchmark: scalar vs. batched engine over a fixed cell matrix.

This is the repo's perf baseline — the first point of its performance
trajectory, and the harness every later perf PR is measured against. It
runs a fixed matrix of (mitigation x workload) cells under both
simulation engines, times each cell, verifies the engines agreed on the
numbers (bit-identical ``sum_ipc``/swaps — a perf run that silently
changed results would be worthless), and writes ``BENCH_hotpath.json``
with requests/sec, per-cell speedups, and host information.

Run from the repository root::

    PYTHONPATH=src python tools/bench_hotpath.py            # full matrix
    PYTHONPATH=src python tools/bench_hotpath.py --quick    # CI smoke
    PYTHONPATH=src python tools/bench_hotpath.py --append   # add a point

``--append`` accumulates runs into a ``{"runs": [...]}`` trajectory
(one committed point per perf PR) instead of overwriting the file.

The full matrix uses the acceptance-sized baseline cell (4 cores x
60k requests, closed page); ``--quick`` shrinks every cell for the CI
``perf-smoke`` job, which uploads the JSON as an artifact (no threshold
gate — the numbers are for trend lines, not pass/fail).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace
from typing import Any, Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.sim.experiment import resolve_workload  # noqa: E402
from repro.sim.pool import available_cpu_count  # noqa: E402
from repro.sim.simulator import (  # noqa: E402
    PerformanceSimulation,
    SimulationParams,
)

#: The fixed cell matrix: the designs the paper compares, on a cache-
#: friendly and a memory-bound workload.
MITIGATIONS = ("baseline", "rrs", "srs", "scale-srs")
WORKLOADS = ("gcc", "povray")
ENGINES = ("scalar", "batched")


def bench_cell(
    workload: str, mitigation: str, params: SimulationParams, repeats: int
) -> Dict[str, Any]:
    """Time one (workload, mitigation) cell under both engines.

    Each engine runs ``repeats`` times; the best wall-clock per engine
    is reported (interference on shared CI hosts only ever slows a run
    down). Returns the cell record for the JSON report.
    """
    spec = resolve_workload(workload)
    requests = params.num_cores * params.requests_per_core
    cell: Dict[str, Any] = {
        "workload": workload,
        "mitigation": mitigation,
        "num_cores": params.num_cores,
        "requests_per_core": params.requests_per_core,
        "policy": params.policy.value,
    }
    checks = {}
    for engine in ENGINES:
        run_params = replace(params, engine=engine)
        best = float("inf")
        for _ in range(repeats):
            simulation = PerformanceSimulation(spec, mitigation, run_params)
            started = time.perf_counter()
            result = simulation.run()
            best = min(best, time.perf_counter() - started)
        checks[engine] = (result.sum_ipc, result.swaps, result.pins)
        cell[engine] = {
            "seconds": round(best, 4),
            "requests_per_second": round(requests / best, 1),
        }
    if checks["scalar"] != checks["batched"]:
        raise AssertionError(
            f"engines disagree on {workload}/{mitigation}: {checks}"
        )
    cell["sum_ipc"] = checks["scalar"][0]
    cell["speedup"] = round(
        cell["scalar"]["seconds"] / cell["batched"]["seconds"], 3
    )
    return cell


def host_info() -> Dict[str, Any]:
    """Host fingerprint for comparing benchmark points over time.

    Records both the machine's CPU count and the count actually
    available to this process (``sched_getaffinity`` — smaller under
    cgroup/affinity limits, e.g. a 1-CPU CI container on a big host):
    trajectory points are only comparable when the *available* counts
    match.
    """
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cpu_available": available_cpu_count(),
    }


def main(argv: List[str] = None) -> int:
    """Run the matrix and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced matrix for CI smoke (2 cores x 8k requests, 1 repeat)",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_hotpath.json"),
        help="output JSON path (default: BENCH_hotpath.json in the repo root)",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="append this run to the existing JSON (a {'runs': [...]} "
             "trajectory) instead of overwriting; a legacy single-run "
             "file becomes the trajectory's first point",
    )
    args = parser.parse_args(argv)

    if args.quick:
        params = SimulationParams(num_cores=2, requests_per_core=8_000)
        repeats = 1
    else:
        # The acceptance cell: 4 cores x 60k requests, closed page.
        # Best-of-3 per engine: interference on a shared 1-CPU host only
        # ever slows a run down, so more repeats means less noise.
        params = SimulationParams(num_cores=4, requests_per_core=60_000)
        repeats = 3

    cells = []
    for workload in WORKLOADS:
        for mitigation in MITIGATIONS:
            cell = bench_cell(workload, mitigation, params, repeats)
            print(
                f"{workload:<8s} {mitigation:<10s} "
                f"scalar {cell['scalar']['requests_per_second']:>10,.0f} req/s   "
                f"batched {cell['batched']['requests_per_second']:>10,.0f} req/s   "
                f"speedup {cell['speedup']:.2f}x"
            )
            cells.append(cell)

    baseline_cells = [c for c in cells if c["mitigation"] == "baseline"]
    swap_cells = [c for c in cells if c["mitigation"] != "baseline"]
    by_mitigation = {
        mitigation: min(
            c["speedup"] for c in cells if c["mitigation"] == mitigation
        )
        for mitigation in MITIGATIONS
    }
    report = {
        "benchmark": "hotpath",
        "quick": args.quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": host_info(),
        "params": {
            "num_cores": params.num_cores,
            "requests_per_core": params.requests_per_core,
            "trh": params.trh,
            "time_scale": params.time_scale,
            "tracker": params.tracker,
            "policy": params.policy.value,
            "repeats": repeats,
        },
        "cells": cells,
        "summary": {
            "baseline_speedup_min": min(c["speedup"] for c in baseline_cells),
            "baseline_speedup_max": max(c["speedup"] for c in baseline_cells),
            # Worst swap-design cell: the number the batched swap path
            # is accountable for (target >= 2x on the full matrix).
            "swap_speedup_min": min(c["speedup"] for c in swap_cells),
            "swap_speedup_max": max(c["speedup"] for c in swap_cells),
            "speedup_by_mitigation": by_mitigation,
        },
    }
    payload: Dict[str, Any] = report
    if args.append:
        runs: List[Dict[str, Any]] = []
        if os.path.exists(args.out):
            with open(args.out, encoding="utf-8") as handle:
                existing = json.load(handle)
            # A legacy single-run file becomes the first trajectory point.
            runs = existing.get("runs", [existing])
        runs.append(report)
        payload = {"benchmark": "hotpath", "runs": runs}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}"
          + (f" ({len(payload['runs'])} run(s))" if args.append else ""))
    print(
        "baseline-cell speedup: "
        f"{report['summary']['baseline_speedup_min']:.2f}x - "
        f"{report['summary']['baseline_speedup_max']:.2f}x"
    )
    # One greppable line per tier for the CI perf-smoke log.
    print(
        "swap-cell speedup: "
        f"{report['summary']['swap_speedup_min']:.2f}x - "
        f"{report['summary']['swap_speedup_max']:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
