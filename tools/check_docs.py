#!/usr/bin/env python
"""Documentation checks for CI (no third-party dependencies).

Two checks, both fast:

1. **Docstring coverage** (interrogate-style, via ``ast``): every public
   module, class, function, and method under the enforced packages
   (``repro.workloads``, ``repro.sim``, ``repro.cpu``) must carry a
   docstring. "Public" means not underscore-prefixed; dunders other than
   module-level ``__init__`` are exempt, as are trivial overrides of the
   collection protocol (``__len__``-style dunders).

2. **Doc code blocks import cleanly**: every fenced ``python`` block in
   README.md and DESIGN.md is parsed, and its import statements are
   executed, so renamed or removed APIs break CI instead of readers.

Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py

Exits non-zero with a per-finding report on failure.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Packages whose public API must be fully documented. Globbed
#: recursively, so subpackages (``repro.sim.engine``, ...) are enforced
#: automatically.
ENFORCED_PACKAGES = (
    "src/repro/workloads",
    "src/repro/sim",
    "src/repro/cpu",
    "src/repro/report",
)

#: Documents whose ``python`` code blocks must import cleanly.
DOCUMENTS = ("README.md", "DESIGN.md")


def iter_python_files() -> Iterator[Path]:
    """Every module of the enforced packages."""
    for package in ENFORCED_PACKAGES:
        yield from sorted((REPO_ROOT / package).rglob("*.py"))


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_node(
    node: ast.AST, qualname: str, findings: List[str], path: Path
) -> None:
    """Record a finding if a public def/class lacks a docstring."""
    if ast.get_docstring(node) is None:
        findings.append(f"{path.relative_to(REPO_ROOT)}:{node.lineno}: {qualname}")


def check_docstrings() -> List[str]:
    """Missing-docstring findings across the enforced packages."""
    findings: List[str] = []
    for path in iter_python_files():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            findings.append(f"{path.relative_to(REPO_ROOT)}:1: module docstring")
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_public(node.name):
                _check_node(node, f"class {node.name}", findings, path)
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(item.name):
                        _check_node(
                            item, f"{node.name}.{item.name}", findings, path
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Module-level functions; methods are handled above.
                if _is_public(node.name) and node.col_offset == 0:
                    _check_node(node, f"def {node.name}", findings, path)
    return findings


def python_blocks(text: str) -> Iterator[Tuple[int, str]]:
    """(start line, code) for each fenced ``python`` block."""
    for match in re.finditer(r"```python\n(.*?)```", text, flags=re.DOTALL):
        line = text[: match.start()].count("\n") + 2
        yield line, match.group(1)


def check_documents() -> List[str]:
    """Findings for doc code blocks that fail to parse or import."""
    findings: List[str] = []
    for name in DOCUMENTS:
        path = REPO_ROOT / name
        if not path.exists():
            findings.append(f"{name}: document missing")
            continue
        for line, code in python_blocks(path.read_text(encoding="utf-8")):
            try:
                tree = ast.parse(code)
            except SyntaxError as error:
                findings.append(f"{name}:{line}: syntax error: {error}")
                continue
            imports = [
                node
                for node in tree.body
                if isinstance(node, (ast.Import, ast.ImportFrom))
            ]
            for node in imports:
                snippet = ast.get_source_segment(code, node) or "<import>"
                try:
                    exec(compile(ast.Module([node], []), name, "exec"), {})
                except Exception as error:  # pragma: no cover - report & continue
                    findings.append(
                        f"{name}:{line + node.lineno - 1}: "
                        f"{snippet!r} failed: {error}"
                    )
    return findings


def main() -> int:
    """Run both checks; print findings and return a process exit code."""
    failures = 0
    docstring_findings = check_docstrings()
    if docstring_findings:
        failures += len(docstring_findings)
        print(f"missing docstrings ({len(docstring_findings)}):")
        for finding in docstring_findings:
            print(f"  {finding}")
    document_findings = check_documents()
    if document_findings:
        failures += len(document_findings)
        print(f"broken doc code blocks ({len(document_findings)}):")
        for finding in document_findings:
            print(f"  {finding}")
    if failures:
        print(f"FAILED: {failures} documentation finding(s)")
        return 1
    modules = sum(1 for _ in iter_python_files())
    print(f"docs OK: {modules} modules fully documented, "
          f"{len(DOCUMENTS)} documents import cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
