#!/usr/bin/env python
"""End-to-end grid throughput benchmark: workload plane on vs. off.

Where ``bench_hotpath.py`` times single cells inside one process, this
benchmark times what a user actually runs: a whole
``mitigations x trackers x trh`` grid over one recorded workload,
serial and pooled, with the workload plane enabled and disabled. The
plane's job is to eliminate the per-cell fixed cost (trace load, address
decode, batched-engine ``tolist``), so the honest metric is end-to-end
cells/second on the full grid — including pool startup, shared-memory
publication, and result plumbing.

Run from the repository root::

    PYTHONPATH=src python tools/bench_grid.py            # full matrix
    PYTHONPATH=src python tools/bench_grid.py --quick    # CI smoke
    PYTHONPATH=src python tools/bench_grid.py --append   # add a point

``--append`` accumulates runs into a ``{"runs": [...]}`` trajectory in
``BENCH_grid.json`` (one committed point per perf PR).

The workload is a freshly recorded single-file (rate-mode) trace:
every core of every cell replays the same recorded stream, which is the
plane's hardest-working case — without it, each cell re-reads and
re-decodes the file once *per core*. The benchmark asserts all four
modes produced bit-identical result sets before reporting any number,
and that no ``repro-`` shared-memory segment survived.

A second, *analytical* section times a high-cardinality security grid
(hundreds of microsecond-scale closed-form cells) under per-cell vs
chunked pool dispatch — the chunk scheduler's target case — printing
the greppable ``chunked cells/sec:`` line and asserting all dispatch
modes match the serial reference bit-identically.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Any, Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.sim.evaluations import SecurityParams  # noqa: E402
from repro.sim.experiment import (  # noqa: E402
    ExperimentSpec,
    resolve_workload,
    run_grid,
)
from repro.sim.pool import ProcessPool, SerialPool, available_cpu_count  # noqa: E402
from repro.sim.recorder import record_workload  # noqa: E402
from repro.sim.simulator import SimulationParams  # noqa: E402
from repro.workloads import plane  # noqa: E402

#: The grid matrix: the paper's swap designs under both cheap trackers,
#: across two thresholds — 13 cells over one workload (12 + 1 deduped
#: baseline), the shape a `repro grid` sweep actually runs.
MITIGATIONS = ("rrs", "srs", "scale-srs")
TRACKERS = ("misra-gries", "exact")


def build_spec(trace_dir: str, quick: bool) -> ExperimentSpec:
    """The benchmark grid over the recorded rate-mode trace."""
    if quick:
        params = SimulationParams(
            num_cores=2, requests_per_core=800, time_scale=32,
            engine="batched",
        )
        trhs = [1200]
    else:
        params = SimulationParams(
            num_cores=4, requests_per_core=4_000, time_scale=32,
            engine="batched",
        )
        trhs = [2400, 1200]
    return ExperimentSpec(
        workloads=[f"trace:{trace_dir}"],
        mitigations=list(MITIGATIONS),
        base_params=params,
        grid={"tracker": list(TRACKERS), "trh": trhs},
    )


def record_trace(out_dir: str, quick: bool) -> None:
    """Record the single-file gcc stream every benchmark cell replays."""
    requests = 12_000 if quick else 120_000
    record_workload(
        resolve_workload("gcc"),
        SimulationParams(num_cores=1, requests_per_core=requests),
        out_dir=out_dir,
    )


def build_analytical_spec(quick: bool) -> ExperimentSpec:
    """A high-cardinality security grid of microsecond-scale cells.

    The chunk scheduler's target case: each cell is one closed-form
    Juggernaut evaluation (fixed round budget, no Monte-Carlo), so the
    per-cell pool dispatch used to dwarf the cell itself. 2000 cells
    full (2 designs x 20 TRH x 50 swap rates), 200 quick.
    """
    if quick:
        trhs = [1200 + 200 * i for i in range(10)]
        rates = [2.0 + 0.5 * i for i in range(10)]
    else:
        trhs = [1200 + 100 * i for i in range(20)]
        rates = [2.0 + 0.1 * i for i in range(50)]
    return ExperimentSpec(
        kind="security",
        mitigations=["rrs", "srs"],
        base_params=SecurityParams(rounds=64, iterations=0),
        grid={"trh": trhs, "swap_rate": rates},
    )


def run_analytical_mode(
    spec: ExperimentSpec, mode: str, workers: int, repeats: int
) -> Dict[str, Any]:
    """Time the analytical grid in one dispatch mode, best of ``repeats``.

    Modes: ``serial`` (the unchunked in-process reference every other
    mode must match bit-identically), ``per-cell`` (pooled, one cell
    per dispatch — the pre-chunking behavior), ``chunked`` (pooled,
    cost-budgeted chunks).
    """
    best = float("inf")
    results = None
    for _ in range(repeats):
        if mode == "serial":
            pool = SerialPool()
        else:
            pool = ProcessPool(workers, chunking=(mode == "chunked"))
        started = time.perf_counter()
        results = run_grid(spec, pool=pool)
        best = min(best, time.perf_counter() - started)
    stats = results.run_stats
    return {
        "mode": mode,
        "seconds": round(best, 4),
        "cells": stats.planned,
        "chunks": stats.chunks,
        "cells_per_second": round(stats.planned / best, 3),
        "_json": results.to_json(),
    }


def run_analytical_benchmark(quick: bool, repeats: int) -> Dict[str, Any]:
    """The analytical section: serial vs per-cell vs chunked dispatch."""
    spec = build_analytical_spec(quick)
    spec.validate()
    workers = min(4, available_cpu_count())
    modes = [
        run_analytical_mode(spec, mode, workers, repeats)
        for mode in ("serial", "per-cell", "chunked")
    ]
    reference = modes[0].pop("_json")
    for mode in modes[1:]:
        if mode.pop("_json") != reference:
            raise AssertionError(
                f"analytical mode {mode['mode']} changed results — "
                f"bit-identity violated"
            )
    serial, per_cell, chunked = modes
    speedup = round(
        chunked["cells_per_second"] / per_cell["cells_per_second"], 3
    )
    for mode in modes:
        chunk_note = (
            f"  ({mode['chunks']} chunks)" if mode["chunks"] is not None else ""
        )
        print(
            f"analytical {mode['mode']:<9s}{mode['cells']} cells in "
            f"{mode['seconds']:.3f}s  {mode['cells_per_second']:>10.2f} "
            f"cells/s{chunk_note}"
        )
    # Greppable by the CI grid-throughput-smoke job.
    print(f"chunked cells/sec: {chunked['cells_per_second']:.2f}")
    print(f"analytical chunked speedup: {speedup:.2f}x")
    return {
        "cells": serial["cells"],
        "workers": workers,
        "modes": modes,
        "chunked_speedup": speedup,
    }


def run_mode(
    spec: ExperimentSpec, pooled: bool, enabled: bool, repeats: int
) -> Dict[str, Any]:
    """Time ``run_grid`` in one (pooled?, plane?) mode, best of ``repeats``.

    Every repeat starts from a cold plane (the fixed cost under test is
    exactly what the plane amortizes *within* one grid run); the numbers
    include pool startup and shared-memory publication. Returns seconds,
    cells/sec, the result JSON (for the bit-identity assertion), and the
    plane accounting of the final repeat.
    """
    os.environ[plane.ENV_PLANE] = "on" if enabled else "off"
    best = float("inf")
    results = None
    for _ in range(repeats):
        plane.reset()
        pool = ProcessPool(max_workers=2) if pooled else SerialPool()
        started = time.perf_counter()
        results = run_grid(spec, pool=pool)
        best = min(best, time.perf_counter() - started)
    os.environ.pop(plane.ENV_PLANE, None)
    stats = results.run_stats
    workloads = stats.workloads
    return {
        "pooled": pooled,
        "plane": enabled,
        "seconds": round(best, 4),
        "cells": stats.planned,
        "cells_per_second": round(stats.planned / best, 3),
        "workloads": (
            None if workloads is None else {
                "generated": workloads.generated,
                "attached": workloads.attached,
                "trace_hits": workloads.trace_hits,
                "decode_hits": workloads.decode_hits,
            }
        ),
        "_json": results.to_json(),
        "_line": None if workloads is None else workloads.line,
    }


def host_info() -> Dict[str, Any]:
    """Host fingerprint for comparing benchmark points over time."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cpu_available": available_cpu_count(),
    }


def main(argv: List[str] = None) -> int:
    """Run the four modes, assert bit-identity, write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced matrix for CI smoke (7 cells x 2 cores x 800 "
             "requests over a 12k-record trace, 1 repeat)",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_grid.json"),
        help="output JSON path (default: BENCH_grid.json in the repo root)",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="append this run to the existing JSON (a {'runs': [...]} "
             "trajectory) instead of overwriting; a legacy single-run "
             "file becomes the trajectory's first point",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repetitions per mode, best-of (default: 1 quick, "
             "2 full; raise on noisy hosts)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.quick else 2)

    with tempfile.TemporaryDirectory(prefix="bench-grid-") as scratch:
        # Setup (untimed): the recorded stream and a warm parsed-trace
        # cache, so every mode starts from identical on-disk state.
        os.environ["REPRO_TRACE_CACHE"] = os.path.join(scratch, "cache")
        trace_dir = os.path.join(scratch, "trace")
        record_trace(trace_dir, args.quick)
        spec = build_spec(trace_dir, args.quick)
        spec.validate()
        resolve_workload(f"trace:{trace_dir}").arrays_for_core(
            0, spec.base_params, spec.base_params.make_organization()
        )
        plane.reset()

        modes = [
            run_mode(spec, pooled=False, enabled=False, repeats=repeats),
            run_mode(spec, pooled=False, enabled=True, repeats=repeats),
            run_mode(spec, pooled=True, enabled=False, repeats=repeats),
            run_mode(spec, pooled=True, enabled=True, repeats=repeats),
        ]

    reference = modes[0].pop("_json")
    for mode in modes[1:]:
        if mode.pop("_json") != reference:
            raise AssertionError(
                f"plane changed results in mode pooled={mode['pooled']} "
                f"plane={mode['plane']} — bit-identity violated"
            )
    leaked = [f for f in os.listdir("/dev/shm") if f.startswith("repro-")] \
        if os.path.isdir("/dev/shm") else []
    if leaked:
        raise AssertionError(f"leaked shared-memory segments: {leaked}")

    lines = [mode.pop("_line") for mode in modes]
    serial_off, serial_on, pooled_off, pooled_on = modes
    serial_speedup = round(
        serial_on["cells_per_second"] / serial_off["cells_per_second"], 3
    )
    pooled_speedup = round(
        pooled_on["cells_per_second"] / pooled_off["cells_per_second"], 3
    )
    for mode in modes:
        label = ("pooled" if mode["pooled"] else "serial") + (
            " plane-on " if mode["plane"] else " plane-off"
        )
        print(
            f"{label}  {mode['cells']} cells in {mode['seconds']:.3f}s  "
            f"{mode['cells_per_second']:>8.2f} cells/s"
        )
    # The plane-on pooled accounting, greppable by the CI smoke job.
    if lines[3]:
        print(lines[3])

    analytical = run_analytical_benchmark(args.quick, repeats)

    report = {
        "benchmark": "grid",
        "quick": args.quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": host_info(),
        "params": {
            "num_cores": spec.base_params.num_cores,
            "requests_per_core": spec.base_params.requests_per_core,
            "engine": spec.base_params.engine,
            "mitigations": list(MITIGATIONS),
            "trackers": list(TRACKERS),
            "repeats": repeats,
        },
        "modes": modes,
        "analytical": analytical,
        "summary": {
            "serial_speedup": serial_speedup,
            "pooled_speedup": pooled_speedup,
            "analytical_chunked_speedup": analytical["chunked_speedup"],
        },
    }
    payload: Dict[str, Any] = report
    if args.append:
        runs: List[Dict[str, Any]] = []
        if os.path.exists(args.out):
            with open(args.out, encoding="utf-8") as handle:
                existing = json.load(handle)
            # A legacy single-run file becomes the first trajectory point.
            runs = existing.get("runs", [existing])
        runs.append(report)
        payload = {"benchmark": "grid", "runs": runs}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}"
          + (f" ({len(payload['runs'])} run(s))" if args.append else ""))
    # One greppable line per tier for the CI grid-throughput-smoke log.
    print(f"serial grid speedup: {serial_speedup:.2f}x")
    print(f"pooled grid speedup: {pooled_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
