"""Legacy setup shim for offline editable installs (no `wheel` package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Scalable and Secure Row-Swap' (HPCA 2023): RRS, "
        "SRS, Scale-SRS, and the Juggernaut attack on a Python DDR4 "
        "memory-system simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
